#ifndef ONEEDIT_SERVING_SNAPSHOT_H_
#define ONEEDIT_SERVING_SNAPSHOT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/oneedit.h"
#include "util/status.h"
#include "util/statusor.h"

namespace oneedit {
namespace serving {

/// One published, immutable serving state: a SystemReadView (frozen KG +
/// weights + embedding/adaptor views + edit-cache generation) stamped with
/// the last WAL sequence whose effects it contains and its publication
/// epoch. Refcounted: the state lives while any reader handle, retention
/// slot, or ring slot references it, and is freed when the last reference
/// drains — that is the "retire" step of the publish → pin → retire
/// lifecycle.
struct ReadState {
  ReadState(SystemReadView v, uint64_t seq, uint64_t ep,
            std::shared_ptr<std::atomic<int64_t>> alive)
      : view(std::move(v)), sequence(seq), epoch(ep), alive_(std::move(alive)) {
    if (alive_ != nullptr) alive_->fetch_add(1, std::memory_order_relaxed);
  }
  ~ReadState() {
    if (alive_ != nullptr) alive_->fetch_sub(1, std::memory_order_relaxed);
  }

  ReadState(const ReadState&) = delete;
  ReadState& operator=(const ReadState&) = delete;

  SystemReadView view;
  uint64_t sequence = 0;
  uint64_t epoch = 0;

 private:
  /// Hub-shared liveness counter, so tests can assert retired states are
  /// actually freed (no unbounded epoch growth).
  std::shared_ptr<std::atomic<int64_t>> alive_;
};

/// Options for EditService::GetSnapshot — the unified read surface that
/// subsumes the old Ask / AskAtLeast split.
struct ReadOptions {
  /// Time travel: serve the newest retained state whose sequence is
  /// <= at_sequence. OutOfRange if that state has already left the
  /// retention window.
  std::optional<uint64_t> at_sequence;
  /// Bounded staleness (the old AskAtLeast token): require a state with
  /// sequence >= min_sequence. Without a deadline, Unavailable immediately
  /// when the instance is still behind; with one, wait for the writer (or
  /// replication apply loop) to catch up until the deadline, then
  /// Unavailable.
  uint64_t min_sequence = 0;
  /// Optional wait bound for min_sequence.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// A pinned, immutable view of the whole system. Every read through one
/// handle observes the same post-batch instant — model decodes and KG
/// lookups can never mix two edit batches. Handles are cheap to copy, safe
/// to share across threads, and keep their state alive (and its sequence
/// readable via time-travel) until released; they never block the writer.
class Snapshot {
 public:
  /// An invalid handle; every read returns FailedPrecondition.
  Snapshot() = default;

  bool valid() const { return state_ != nullptr; }

  /// The WAL sequence whose effects this snapshot serves (0 when the system
  /// has no durability manager and nothing was applied yet).
  uint64_t sequence() const { return state_ == nullptr ? 0 : state_->sequence; }

  /// Publication ordinal of this state (1-based; monotone per service).
  uint64_t epoch() const { return state_ == nullptr ? 0 : state_->epoch; }

  /// KnowledgeGraph::version() / EditCache::generation() at publication —
  /// the cross-store consistency stamps.
  uint64_t kg_version() const {
    return state_ == nullptr ? 0 : state_->view.kg_version;
  }
  uint64_t cache_generation() const {
    return state_ == nullptr ? 0 : state_->view.cache_generation;
  }

  /// Model read ("what is the <relation> of <subject>?") against the pinned
  /// state. Lock-free. Errors (docs/serving.md):
  ///  - FailedPrecondition: invalid (default-constructed) handle;
  ///  - InvalidArgument: empty subject or relation.
  StatusOr<Decode> Ask(const std::string& subject,
                       const std::string& relation) const;

  /// Symbolic reads against the same pinned state.
  bool KgContains(const NamedTriple& triple) const {
    return state_ != nullptr && state_->view.kg.Contains(triple);
  }
  std::optional<std::string> KgObjectOf(const std::string& subject,
                                        const std::string& relation) const {
    if (state_ == nullptr) return std::nullopt;
    return state_->view.kg.ObjectOf(subject, relation);
  }

 private:
  friend class SnapshotHub;
  explicit Snapshot(std::shared_ptr<const ReadState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const ReadState> state_;
};

/// The epoch-based publication point between one writer and many readers.
///
/// The writer calls Publish(view, sequence) after each validated batch;
/// readers call Acquire()/GetSnapshot() and never take a lock on the hot
/// path. The mechanism is a small ring of kSlots slots, each a
/// {state, pin-count} pair, plus a monotone epoch counter naming the
/// current slot:
///
///  - reader (pin):   e = epoch; pins[e % k]++; re-validate epoch == e;
///                    copy the slot's shared_ptr; pins[e % k]--.
///  - writer (publish): wait for pins[(e+1) % k] == 0; write the new state
///                    into that slot (dropping the state from k epochs
///                    ago); epoch = e + 1.
///
/// Correctness leans on the seq_cst total order over the pin RMWs and the
/// epoch loads/stores: if the writer's pins==0 read precedes a reader's
/// pin increment, that reader's validation load is also after the writer's
/// earlier epoch stores, so it observes an epoch >= e + k - 1 != e
/// (kSlots >= 2) and retries without touching the slot; if the increment
/// precedes the read, the writer waits for the unpin, which the reader
/// issues only after its copy completes. Either way the writer never
/// overwrites a slot a reader is copying from. Pins are held only for the
/// few instructions of a shared_ptr copy — lifetime beyond that is the
/// refcount's job — so the writer's wait is bounded and short.
///
/// A mutex-guarded retention deque of the last `retention` states backs the
/// two cold paths: at_sequence time travel and min_sequence waits.
class SnapshotHub {
 public:
  static constexpr size_t kSlots = 4;

  /// `retention`: how many recent states stay reachable for at_sequence
  /// time travel (clamped to >= kSlots so the alive-minus-retained reader
  /// gauge stays meaningful).
  explicit SnapshotHub(size_t retention = 8);
  ~SnapshotHub();

  SnapshotHub(const SnapshotHub&) = delete;
  SnapshotHub& operator=(const SnapshotHub&) = delete;

  // --- Writer side (one publishing thread at a time) -------------------------

  /// Publishes `view` as the new current state. Wakes min_sequence waiters.
  void Publish(SystemReadView view, uint64_t sequence);

  /// Wakes every waiter with Unavailable and makes further waits fail fast.
  /// Publish/Acquire stay usable (shutdown still serves pinned readers).
  void Stop();

  // --- Reader side ------------------------------------------------------------

  /// Lock-free pin of the current state; nullptr before the first Publish.
  std::shared_ptr<const ReadState> Acquire() const;

  /// The unified read entry: resolves `options` to a pinned Snapshot.
  ///  - OK: a valid handle;
  ///  - Unavailable: min_sequence not yet applied (immediately without a
  ///    deadline; after waiting until the deadline with one), the hub is
  ///    stopped mid-wait, or nothing was published yet;
  ///  - OutOfRange: at_sequence predates the retention window;
  ///  - InvalidArgument: both at_sequence and min_sequence set with
  ///    at_sequence < min_sequence (an unsatisfiable read).
  StatusOr<Snapshot> GetSnapshot(const ReadOptions& options = {}) const;

  // --- Gauges (lock-free unless noted) ----------------------------------------

  /// Publication count / last published sequence.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t sequence() const {
    return sequence_.load(std::memory_order_acquire);
  }
  /// ReadState objects not yet destroyed.
  int64_t states_alive() const {
    return alive_->load(std::memory_order_relaxed);
  }
  /// States currently in the retention window. Takes the retention mutex.
  size_t states_retained() const;
  /// States kept alive solely by outstanding reader handles (alive minus
  /// retained; >= 0). The pinned-reader gauge the metrics page exports.
  int64_t reader_held_states() const;

 private:
  struct Slot {
    /// Written only by the publisher, only while unpinned and not current.
    std::shared_ptr<const ReadState> state;
    /// Transient reader pins; see the class comment for the protocol.
    mutable std::atomic<uint64_t> pins{0};
  };

  /// Newest retained state with sequence <= at_sequence (retention mutex).
  StatusOr<Snapshot> AcquireAt(uint64_t at_sequence,
                               uint64_t min_sequence) const;

  Slot ring_[kSlots];
  /// 0 = nothing published; otherwise the current slot is epoch_ % kSlots.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> sequence_{0};
  std::shared_ptr<std::atomic<int64_t>> alive_ =
      std::make_shared<std::atomic<int64_t>>(0);

  size_t retention_;
  mutable std::mutex retain_mutex_;
  mutable std::condition_variable retain_cv_;
  std::deque<std::shared_ptr<const ReadState>> retained_;
  bool stopped_ = false;
};

}  // namespace serving
}  // namespace oneedit

#endif  // ONEEDIT_SERVING_SNAPSHOT_H_
