#include "serving/snapshot.h"

#include <thread>

#include "obs/profiler.h"
#include "obs/trace.h"

namespace oneedit {
namespace serving {

StatusOr<Decode> Snapshot::Ask(const std::string& subject,
                               const std::string& relation) const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition(
        "read on an invalid (default-constructed) Snapshot handle");
  }
  if (subject.empty()) return Status::InvalidArgument("empty subject");
  if (relation.empty()) return Status::InvalidArgument("empty relation");
  obs::CostProfiler& profiler = obs::CostProfiler::Global();
  if (!profiler.enabled()) return state_->view.Ask(subject, relation);
  // Cost accounting for the decode hot path: attribute this read's micros
  // to the (entity, relation) it touched. Lock-free; ~2 hashes + a few
  // relaxed fetch_adds on top of the decode itself.
  const uint64_t start_ns = obs::TraceNowNanos();
  Decode decode = state_->view.Ask(subject, relation);
  profiler.RecordRead(subject, relation,
                      (obs::TraceNowNanos() - start_ns) / 1000);
  return decode;
}

SnapshotHub::SnapshotHub(size_t retention)
    : retention_(retention < kSlots ? kSlots : retention) {}

SnapshotHub::~SnapshotHub() { Stop(); }

void SnapshotHub::Publish(SystemReadView view, uint64_t sequence) {
  const uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
  auto state =
      std::make_shared<const ReadState>(std::move(view), sequence, next, alive_);

  Slot& slot = ring_[next % kSlots];
  // Wait out stragglers still pinned on the state from kSlots epochs ago.
  // Pins are only ever held across a shared_ptr copy, so this spin is
  // bounded by a few instructions per reader.
  while (slot.pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  slot.state = state;  // retires the state from kSlots epochs ago
  epoch_.store(next, std::memory_order_seq_cst);
  sequence_.store(sequence, std::memory_order_seq_cst);

  {
    std::lock_guard<std::mutex> lock(retain_mutex_);
    retained_.push_back(std::move(state));
    while (retained_.size() > retention_) retained_.pop_front();
  }
  retain_cv_.notify_all();
}

void SnapshotHub::Stop() {
  {
    std::lock_guard<std::mutex> lock(retain_mutex_);
    stopped_ = true;
  }
  retain_cv_.notify_all();
}

std::shared_ptr<const ReadState> SnapshotHub::Acquire() const {
  for (;;) {
    const uint64_t e = epoch_.load(std::memory_order_seq_cst);
    if (e == 0) return nullptr;
    const Slot& slot = ring_[e % kSlots];
    slot.pins.fetch_add(1, std::memory_order_seq_cst);
    if (epoch_.load(std::memory_order_seq_cst) == e) {
      // Validated: the publisher cannot touch this slot until we unpin
      // (see the protocol proof in the header).
      std::shared_ptr<const ReadState> out = slot.state;
      slot.pins.fetch_sub(1, std::memory_order_release);
      return out;
    }
    // The epoch moved under us; this slot may be mid-overwrite. Unpin and
    // retry on the new epoch.
    slot.pins.fetch_sub(1, std::memory_order_release);
  }
}

size_t SnapshotHub::states_retained() const {
  std::lock_guard<std::mutex> lock(retain_mutex_);
  return retained_.size();
}

int64_t SnapshotHub::reader_held_states() const {
  std::lock_guard<std::mutex> lock(retain_mutex_);
  const int64_t held =
      alive_->load(std::memory_order_relaxed) -
      static_cast<int64_t>(retained_.size());
  return held < 0 ? 0 : held;
}

StatusOr<Snapshot> SnapshotHub::AcquireAt(uint64_t at_sequence,
                                          uint64_t min_sequence) const {
  std::lock_guard<std::mutex> lock(retain_mutex_);
  if (retained_.empty()) {
    return Status::Unavailable("no state published yet");
  }
  // Newest retained state with sequence <= at_sequence.
  for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
    if ((*it)->sequence <= at_sequence) {
      if ((*it)->sequence < min_sequence) {
        return Status::Unavailable(
            "at_sequence " + std::to_string(at_sequence) +
            " resolves to sequence " + std::to_string((*it)->sequence) +
            " < min_sequence " + std::to_string(min_sequence));
      }
      return Snapshot(*it);
    }
  }
  return Status::OutOfRange(
      "at_sequence " + std::to_string(at_sequence) +
      " predates the retention window (oldest retained: " +
      std::to_string(retained_.front()->sequence) + ")");
}

StatusOr<Snapshot> SnapshotHub::GetSnapshot(const ReadOptions& options) const {
  if (options.at_sequence.has_value()) {
    if (*options.at_sequence < options.min_sequence) {
      return Status::InvalidArgument(
          "at_sequence " + std::to_string(*options.at_sequence) +
          " < min_sequence " + std::to_string(options.min_sequence) +
          ": unsatisfiable read");
    }
    return AcquireAt(*options.at_sequence, options.min_sequence);
  }

  // Fast path: the current state already satisfies min_sequence (always
  // true for the default options). Wait-free.
  if (std::shared_ptr<const ReadState> state = Acquire();
      state != nullptr && state->sequence >= options.min_sequence) {
    return Snapshot(std::move(state));
  }

  if (!options.deadline.has_value()) {
    return Status::Unavailable(
        "state behind min_sequence " + std::to_string(options.min_sequence) +
        " (applied: " + std::to_string(sequence()) + ")");
  }

  std::unique_lock<std::mutex> lock(retain_mutex_);
  const bool satisfied = retain_cv_.wait_until(
      lock, *options.deadline, [this, &options] {
        return stopped_ ||
               (!retained_.empty() &&
                retained_.back()->sequence >= options.min_sequence);
      });
  if (!satisfied || stopped_) {
    return Status::Unavailable(
        (stopped_ ? std::string("hub stopped") : std::string("deadline")) +
        " before min_sequence " + std::to_string(options.min_sequence) +
        " was applied (applied: " + std::to_string(sequence()) + ")");
  }
  return Snapshot(retained_.back());
}

}  // namespace serving
}  // namespace oneedit
