#include "serving/self_healing.h"

#include <algorithm>
#include <unordered_set>

#include "eval/probe_eval.h"
#include "util/logging.h"

namespace oneedit {
namespace serving {
namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::vector<EditRequest> Slice(const std::vector<EditRequest>& requests,
                               size_t lo, size_t hi) {
  return std::vector<EditRequest>(requests.begin() + lo, requests.begin() + hi);
}

}  // namespace

SelfHealer::Canaries SelfHealer::SampleWithBaselines(
    const std::vector<EditRequest>& requests, uint64_t seed) const {
  Canaries canaries;
  if (options_.canary_sample == 0) return canaries;
  obs::Span canary_span("canary");
  // The batch's own slots legitimately change; everything else must not.
  std::unordered_set<std::string> footprint;
  for (const EditRequest& request : requests) {
    if (request.op == EditRequest::Op::kUtterance) continue;
    footprint.insert(request.triple.subject);
    footprint.insert(request.triple.object);
  }
  // Oversample, then keep confidently-decoded candidates first: a canary
  // the model barely decides flips under the benign drift of any weight-
  // writing batch and would false-positive the validation. Margins are a
  // deterministic function of the pre-batch state, so live validation and
  // crash-recovery replay select the same canary set.
  const size_t oversample =
      options_.canary_sample * std::max<size_t>(size_t{1},
                                                options_.canary_oversample);
  const std::vector<Probe> candidates =
      SampleCanaryProbes(system_->kg(), seed, oversample, footprint);
  const LanguageModel& model = system_->model();
  std::vector<std::pair<Probe, std::string>> fallback;
  for (const Probe& probe : candidates) {
    if (canaries.probes.size() >= options_.canary_sample) break;
    const Decode decode = LocalityDecode(model, probe);
    if (decode.margin >= model.config().decode_margin) {
      canaries.probes.push_back(probe);
      canaries.baselines.push_back(decode.entity);
    } else {
      fallback.emplace_back(probe, decode.entity);
    }
  }
  // Not enough confident facts in the KG: fill with marginal ones (sampled
  // order) rather than validating against a thinner canary set.
  for (size_t i = 0;
       i < fallback.size() && canaries.probes.size() < options_.canary_sample;
       ++i) {
    canaries.probes.push_back(fallback[i].first);
    canaries.baselines.push_back(fallback[i].second);
  }
  return canaries;
}

bool SelfHealer::SameEntity(const std::string& a, const std::string& b) const {
  if (a == b) return true;
  const KnowledgeGraph& kg = system_->kg();
  const auto ia = kg.LookupEntity(a);
  const auto ib = kg.LookupEntity(b);
  return ia.ok() && ib.ok() && kg.Canonical(*ia) == kg.Canonical(*ib);
}

SelfHealer::Verdict SelfHealer::Validate(
    const std::vector<EditRequest>& requests,
    const std::vector<StatusOr<EditResult>>& results,
    const Canaries& canaries) const {
  Verdict verdict;
  if (options_.reliability_probe) {
    obs::Span probe_span("reliability-probe");
    for (size_t i = 0; i < requests.size() && i < results.size(); ++i) {
      // Only programmatic edits carry a triple whose decode we can demand;
      // utterance-driven edits are still covered by the canaries.
      if (requests[i].op != EditRequest::Op::kEdit) continue;
      if (!results[i].ok() || !(*results[i]).applied()) continue;
      const NamedTriple& triple = requests[i].triple;
      const Decode decode = system_->Ask(triple.subject, triple.relation);
      if (!SameEntity(decode.entity, triple.object)) {
        verdict.reliability_failures.push_back(i);
      }
    }
  }
  {
    obs::Span canary_span("canary");
    for (size_t i = 0; i < canaries.probes.size(); ++i) {
      if (!EvalLocalityUnchanged(system_->model(), canaries.probes[i],
                                 canaries.baselines[i])) {
        ++verdict.canary_flips;
      }
    }
  }
  verdict.ok = verdict.reliability_failures.empty() &&
               verdict.canary_flips <= options_.max_canary_flips;
  if (!verdict.ok) {
    if (!verdict.reliability_failures.empty()) {
      verdict.reason =
          std::to_string(verdict.reliability_failures.size()) +
          " edit(s) failed their post-apply reliability probe";
    } else {
      verdict.reason = std::to_string(verdict.canary_flips) + "/" +
                       std::to_string(canaries.probes.size()) +
                       " locality canaries flipped";
    }
  }
  return verdict;
}

bool SelfHealer::SubsetPoisons(const std::vector<EditRequest>& subset,
                               const Canaries& canaries) {
  OneEditSystem::BatchTxn txn = system_->BeginBatchTxn();
  const std::vector<StatusOr<EditResult>> results = system_->EditBatch(subset);
  const Verdict verdict = Validate(subset, results, canaries);
  const Status aborted = system_->AbortBatchTxn(&txn);
  if (!aborted.ok()) {
    ONEEDIT_LOG(Error) << "bisection probe rollback failed: "
                       << aborted.ToString();
  }
  return !verdict.ok;
}

size_t SelfHealer::IsolatePoison(const std::vector<EditRequest>& subset,
                                 const Canaries& canaries) {
  size_t lo = 0;
  size_t hi = subset.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (SubsetPoisons(Slice(subset, lo, mid), canaries)) {
      hi = mid;
    } else if (SubsetPoisons(Slice(subset, mid, hi), canaries)) {
      lo = mid;
    } else {
      // Neither half reproduces the failure alone: an interaction effect.
      // Deterministic tie-break so live and replay verdicts agree.
      return hi - 1;
    }
  }
  return lo;
}

HealedBatch SelfHealer::ApplyValidated(
    const std::vector<EditRequest>& requests, uint64_t validation_seed) {
  HealedBatch out;
  out.results.resize(requests.size(),
                     StatusOr<EditResult>(Status::Internal("unresolved")));
  // Only pure kEdit batches are validated. Erase suppresses pretrained
  // knowledge with rank-one updates that legitimately perturb nearby
  // decodes (canaries would flag the intended collateral), and utterances
  // have no triple to probe until interpreted; both run alone in the
  // writer's batches anyway.
  const bool validatable =
      options_.validate_after_apply &&
      std::all_of(requests.begin(), requests.end(), [](const EditRequest& r) {
        return r.op == EditRequest::Op::kEdit;
      });
  if (!validatable) {
    out.results = system_->EditBatch(requests);
    return out;
  }
  Statistics& stats = system_->statistics();
  // Indices (into `requests`) still in play; shrinks as poisons quarantine.
  std::vector<size_t> active(requests.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;

  while (!active.empty()) {
    std::vector<EditRequest> subset;
    subset.reserve(active.size());
    for (size_t i : active) subset.push_back(requests[i]);
    // The canary set is a function of the CURRENT remaining request set and
    // the batch's original seed, so each healing iteration — live or during
    // replay with condemned records already removed — probes the same facts.
    const Canaries canaries = SampleWithBaselines(subset, validation_seed);

    OneEditSystem::BatchTxn txn = system_->BeginBatchTxn();
    std::vector<StatusOr<EditResult>> results = system_->EditBatch(subset);
    const Verdict verdict = Validate(subset, results, canaries);
    if (verdict.ok) {
      system_->CommitBatchTxn(&txn);
      for (size_t k = 0; k < active.size(); ++k) {
        out.results[active[k]] = std::move(results[k]);
      }
      break;
    }

    stats.Add(Ticker::kCanaryFailures);
    const auto rollback_start = std::chrono::steady_clock::now();
    {
      obs::Span rollback_span("rollback");
      const Status aborted = system_->AbortBatchTxn(&txn);
      if (!aborted.ok()) {
        ONEEDIT_LOG(Error) << "batch rollback failed: " << aborted.ToString();
      }
    }
    stats.Add(Ticker::kRollbackBatches);
    stats.Record(Histogram::kRollbackMicros, ElapsedMicros(rollback_start));
    ++out.rollbacks;

    // Isolate one poison by bisection. A failing reliability probe does NOT
    // directly incriminate its own request: a poison's collateral drift can
    // flip an innocent neighbor's decode in the same batch, so the probe may
    // point at a victim. The half-batch probes instead converge on the
    // request whose presence makes validation fail.
    const size_t p = [&] {
      obs::Span bisect_span("bisect");
      return IsolatePoison(subset, canaries);
    }();
    const size_t original = active[p];
    out.quarantine_reason = verdict.reason;
    EditResult quarantined;
    quarantined.kind = EditResult::Kind::kQuarantined;
    quarantined.message = "quarantined: " + verdict.reason;
    out.results[original] = std::move(quarantined);
    out.quarantined.push_back(original);
    stats.Add(Ticker::kQuarantinedEdits);
    active.erase(active.begin() + static_cast<long>(p));
  }
  std::sort(out.quarantined.begin(), out.quarantined.end());
  return out;
}

}  // namespace serving
}  // namespace oneedit
