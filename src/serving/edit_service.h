#ifndef ONEEDIT_SERVING_EDIT_SERVICE_H_
#define ONEEDIT_SERVING_EDIT_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/oneedit.h"
#include "durability/manager.h"
#include "durability/scrubber.h"
#include "obs/metrics_registry.h"
#include "obs/metrics_server.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "replication/follower.h"
#include "replication/server.h"
#include "serving/self_healing.h"
#include "serving/snapshot.h"

namespace oneedit {
namespace serving {

/// Liveness of the write path (state machine in docs/serving.md). Reads
/// always work; writes stop being accepted once the service degrades.
enum class ServiceHealth {
  kHealthy,
  /// The edit WAL failed an append or group commit (after bounded retry):
  /// durability can no longer be promised, so the service stops
  /// acknowledging writes (they resolve as kRejected) while the read path
  /// stays up.
  kReadOnlyDegraded,
  /// Auto-heal probe in flight: the writer is testing whether the
  /// durability environment recovered (by publishing a checkpoint). Writes
  /// are still rejected; success promotes to kHealthy, failure falls back
  /// to kReadOnlyDegraded.
  kHalfOpenProbing,
  /// A primary with a higher term exists (this node was deposed while
  /// partitioned away, or booted with primary_term > owned_term): writes
  /// are shed as kRejected with a kReplFencedWrites tick. Unlike WAL
  /// degradation, fencing is never auto-healed — only RejoinAsFollower
  /// (or an operator Promote) leaves this state, because the local WAL may
  /// hold a deposed-term suffix that must be reconciled first.
  kFenced,
};

std::string ServiceHealthName(ServiceHealth health);

/// What this service instance is in a replication group
/// (docs/replication.md). A follower rejects writes (kRejected policy
/// results, like degraded mode) and tails the primary's WAL; Promote()
/// turns a follower into a primary at failover.
enum class ReplicationRole {
  kStandalone,  ///< no replication (the default; behavior unchanged)
  kPrimary,     ///< accepts writes, ships its WAL to followers
  kFollower,    ///< read replica: applies shipped batches, rejects writes
};

std::string ReplicationRoleName(ReplicationRole role);

/// What a primary does with client promises when the ack quorum
/// (`ack_replicas`) is not reached within `ack_timeout`.
enum class AckPolicy {
  /// Resolve the affected edits as kRejected (with a kReplQuorumFailures
  /// tick). The edits are journaled and applied locally — exactly the
  /// unacknowledged suffix divergence reconciliation truncates if this
  /// node is later deposed — but the client is told, truthfully, that the
  /// durability promise it asked for was not met. The default: silent
  /// acks that a failover can lose are the split-brain footgun.
  kFailWrite,
  /// Acknowledge on local durability alone, with a warning and a
  /// kReplAckTimeouts tick (the pre-term behavior). Opt-in for
  /// deployments that prefer availability over the replication promise.
  kAckAnywayWarn,
};

/// Replication knobs carried inside EditServiceOptions. Roles other than
/// kStandalone require a durability manager (the WAL is the thing being
/// shipped); without one the service logs an error and stays standalone.
struct ReplicationOptions {
  ReplicationRole role = ReplicationRole::kStandalone;
  /// Primary: loopback port for the replication listener (0 = ephemeral,
  /// read back via replication_server()->port()). Also used by a promoted
  /// follower when it starts its own listener.
  uint16_t listen_port = 0;
  /// Follower: the primary's replication port.
  uint16_t primary_port = 0;
  /// Follower: idle poll cadence (behind, it polls continuously).
  std::chrono::milliseconds poll_interval{20};
  /// Primary: followers that must ack (journal + apply) a batch before its
  /// client promises resolve — 0 acknowledges on local durability alone.
  /// With N >= 1, an acknowledged edit survives primary loss as long as
  /// one acked follower is promoted.
  size_t ack_replicas = 0;
  /// Primary: how long to wait for the ack quorum before `ack_policy`
  /// decides the outcome. Generous by default: an unreachable follower
  /// should degrade ack latency first, and only then trip the policy.
  std::chrono::milliseconds ack_timeout{30000};
  /// Primary: what a quorum timeout means for the waiting clients.
  AckPolicy ack_policy = AckPolicy::kFailWrite;
  /// Network seam threaded into the replication listener, the follower
  /// tailer and the promotion fencer; Net::Default() when null. Chaos
  /// tests interpose a FaultInjectingNet here.
  net::Net* net = nullptr;
  /// Follower: also run a repair listener — a second shipping endpoint on
  /// `repair_listen_port` that answers kFetchRange, so a primary whose
  /// journal rots can pull the clean bytes back from a replica. (A primary
  /// needs no extra listener: its main endpoint already serves fetches.)
  bool enable_repair_listener = false;
  uint16_t repair_listen_port = 0;
  /// Ports this node's replica-assisted repair dials when the scrubber (or
  /// salvage recovery) finds corruption: follower repair listeners and/or
  /// the primary's main port. A follower with an empty list defaults to
  /// its primary_port.
  std::vector<uint16_t> repair_peer_ports;
};

/// One health-state change, recorded (and logged) exactly once per
/// transition.
struct HealthTransition {
  ServiceHealth from = ServiceHealth::kHealthy;
  ServiceHealth to = ServiceHealth::kHealthy;
  std::string reason;
  /// 1-based transition ordinal for this service instance.
  uint64_t sequence = 0;
};

/// Which mechanism serves reads (the deprecated Ask/AskAtLeast shims; the
/// Snapshot surface always uses the hub).
enum class ReadPath {
  /// Lock-free: reads pin the current published ReadState and never touch
  /// the writer's locks. The default, and what GetSnapshot always does.
  kSnapshot,
  /// The pre-snapshot path: writer-gate touch + shared lock on rw_mutex_.
  /// Kept only as the A/B baseline for bench/serving_bench.
  kLockedLegacy,
};

/// Knobs for EditService. Defaults suit an interactive deployment: a small
/// bounded queue that blocks producers rather than dropping edits.
struct EditServiceOptions {
  /// Maximum requests waiting in the queue; Submit beyond this either blocks
  /// or rejects depending on `reject_when_full`. Clamped to >= 1.
  size_t queue_capacity = 256;
  /// Maximum requests the writer coalesces into one batch. Clamped to >= 1.
  size_t max_batch_size = 16;
  /// true: a full queue rejects with ResourceExhausted (load shedding);
  /// false: Submit blocks until the writer frees a slot (backpressure).
  bool reject_when_full = false;
  /// false disables coalescing: the writer applies one request at a time
  /// (the ablation arm in bench/serving_bench).
  bool coalesce = true;
  /// Optional crash-safety: when set (non-owning, must outlive the
  /// service), every batch is journaled to the edit WAL and group-committed
  /// before it is applied, and checkpoints publish on the manager's
  /// cadence. When null the service runs in-memory only, as before.
  durability::DurabilityManager* durability = nullptr;
  /// With a durability manager attached, replay the last durable state into
  /// the system before the writer starts (set false when the caller already
  /// ran recovery itself).
  bool recover_on_start = true;
  /// Self-healing: post-apply validation thresholds, rollback/quarantine,
  /// WAL retry and degraded-mode auto-heal (docs/self_healing.md).
  SelfHealOptions self_heal;
  /// Request-scoped tracing (docs/observability.md): Submit mints a
  /// TraceContext per request and the write path records spans (admission,
  /// queue-wait, wal-append, fsync, guard, locate, apply, canary, ...) into
  /// the global TraceRecorder. Enables the process-wide recorder; set false
  /// to leave the recorder's state alone (e.g. for overhead A/B runs that
  /// toggle it directly).
  bool tracing = true;
  /// Graph-cost profiling (docs/observability.md): enables the process-wide
  /// CostProfiler — per-entity / per-relation cost accounting in the Ask
  /// decode and edit-apply hot paths — and registers this service's KG
  /// fan-out and Horn-rule weight providers, so the total-cost rankings
  /// behind HotEntities/ExpensiveRules, GET /profile, and the profiler_*
  /// gauges are live. Enable-only, like `tracing`: set false to leave the
  /// global profiler's state alone (e.g. for overhead A/B runs).
  bool profiling = true;
  /// Start a loopback HTTP/1.0 metrics listener owned by the service:
  /// GET /metrics (Prometheus text), /metrics.json, /health, /traces?n=N,
  /// /profile?k=K.
  bool expose_metrics = false;
  /// Port for the metrics listener; 0 picks an ephemeral port (read it back
  /// via metrics_server()->port()).
  uint16_t metrics_port = 0;
  /// Replication role and wiring (docs/replication.md).
  ReplicationOptions replication;
  /// Background integrity scrubbing (docs/durability.md): with a durability
  /// manager attached and scrub.enabled set, a low-priority thread
  /// periodically re-verifies WAL frame and checkpoint section CRCs and
  /// hands each finding to replica-assisted repair.
  durability::ScrubOptions scrub;
  /// How the deprecated Ask/AskAtLeast shims read (docs/serving.md).
  /// GetSnapshot ignores this and is always lock-free.
  ReadPath read_path = ReadPath::kSnapshot;
  /// How many published states stay reachable for ReadOptions::at_sequence
  /// time travel (clamped to >= SnapshotHub::kSlots).
  size_t snapshot_retention = 8;
};

/// EditService: the concurrent serving layer over OneEditSystem.
///
/// Replaces the coarse-lock ConcurrentOneEdit facade with epoch-based
/// snapshot reads (docs/serving.md):
///
///  - `GetSnapshot` pins the current published ReadState lock-free and
///    returns a Snapshot handle; every read through one handle observes the
///    same post-batch instant (model decodes and KG lookups never mix two
///    edit batches), and readers never block the writer or each other. After
///    each validated batch the writer publishes a fresh immutable state
///    (COW: only mutated weight layers / KG indexes are copied) stamped with
///    the batch's last WAL sequence; a retired state is freed when the last
///    handle drops it. ReadOptions unifies point-in-time (`at_sequence`) and
///    bounded-staleness (`min_sequence`, the old AskAtLeast) reads.
///  - `Submit` enqueues an EditRequest into a bounded MPMC queue and returns
///    a future. A single writer thread drains the queue, admits pending
///    requests with disjoint entity footprints ({subject, object} — reverse
///    edits write the object's slot too) into one batch, and applies the
///    batch through OneEditSystem::EditBatch under the exclusive lock. Edits
///    against the same slot stay FIFO; edits against disjoint slots coalesce
///    into a single EditingMethod::ApplyBatch weight update.
///
/// Per-request latency, queue depth, batch size and rejection counters flow
/// into the underlying system's Statistics (kServing* tickers/histograms).
///
/// Self-healing (docs/self_healing.md): every applied batch is validated
/// under the exclusive lock (reliability probes + locality canaries via
/// SelfHealer); a failing batch is rolled back byte-exactly, the poison
/// request is bisected out and resolved kQuarantined, its verdict journaled
/// to the WAL, and the innocents re-applied. Requests may carry a deadline
/// (expired ones resolve DeadlineExceeded without occupying the writer),
/// transient WAL failures are retried with capped exponential backoff, and
/// a WAL-degraded service periodically probes a half-open state to promote
/// itself back to healthy.
///
/// Thread-safe. Shutdown ordering (tested in tests/serving_test.cc):
/// Stop() is idempotent and safe to race with in-flight Submit calls — it
/// flips `stopping_` under the queue mutex and notifies both queue CVs, so
/// a Submit blocked on backpressure (or a deadline wait) wakes, observes
/// `stopping_`, and resolves Unavailable rather than sleeping forever; the
/// writer finishes at most its current batch and exits; only then are the
/// orphaned queue entries failed. The destructor calls Stop(), so
/// destroying the service while producers are blocked cannot hang. Drain()
/// also terminates while degraded: the writer keeps popping queued
/// requests and resolves them with degraded rejections.
class EditService {
 public:
  /// Takes ownership of a configured system and starts the writer thread.
  explicit EditService(std::unique_ptr<OneEditSystem> system,
                       const EditServiceOptions& options = {});

  /// Builds the OneEditSystem internally. `kg` and `model` must outlive the
  /// service.
  static StatusOr<std::unique_ptr<EditService>> Create(
      KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config,
      const EditServiceOptions& options = {});

  ~EditService();

  EditService(const EditService&) = delete;
  EditService& operator=(const EditService&) = delete;

  /// Enqueues a request for the writer. The future resolves with the edit's
  /// result once a writer batch containing it has been applied; with
  /// ResourceExhausted if the queue is full and `reject_when_full` is set;
  /// with DeadlineExceeded if the request carries a deadline that expires
  /// while it is still waiting (at admission backpressure or in the queue);
  /// or with Unavailable if the service stops first.
  std::future<StatusOr<EditResult>> Submit(EditRequest request);

  /// Convenience: Submit + wait.
  StatusOr<EditResult> SubmitAndWait(EditRequest request) {
    return Submit(std::move(request)).get();
  }

  /// The unified read entry point: resolves `options` against the published
  /// state and returns a pinned, immutable Snapshot handle (lock-free on the
  /// default/fast path; see serving/snapshot.h for the Status taxonomy).
  /// Any number of reads through the handle observe one consistent instant.
  StatusOr<Snapshot> GetSnapshot(const ReadOptions& options = {}) const;

  /// Deprecated one-shot read shim: pins the current snapshot, asks, drops
  /// the pin (or, with options().read_path == kLockedLegacy, takes the old
  /// writer-gate + shared-lock path — the bench A/B baseline). Multi-read
  /// consistency needs GetSnapshot.
  [[deprecated("use GetSnapshot(ReadOptions{}) and Snapshot::Ask")]]
  Decode Ask(const std::string& subject, const std::string& relation) const;

  /// Blocks until every request submitted so far has been applied (or
  /// rejected) and the writer is idle.
  void Drain();

  /// Stops accepting work and joins the writer. Requests still queued fail
  /// with Unavailable. Idempotent.
  void Stop();

  /// Runs `fn(OneEditSystem&)` under the exclusive lock, with the writer
  /// guaranteed not to be mid-application — for audit-log inspection,
  /// RollbackUserEdits and other administrative surgery. Prefer Drain()
  /// first if `fn` expects all submitted edits to be visible.
  template <typename Fn>
  auto WithExclusive(Fn&& fn) {
    std::unique_lock<std::mutex> gate(writer_gate_);
    std::unique_lock<std::shared_mutex> lock(rw_mutex_);
    gate.unlock();
    // Administrative surgery mutates state readers cannot see until it is
    // republished; do so on every exit path, still under the lock.
    struct Republish {
      EditService* service;
      ~Republish() { service->PublishSnapshot(service->applied_sequence()); }
    } republish{this};
    return fn(*system_);
  }

  /// Statistics are internally atomic — no lock needed.
  const Statistics& statistics() const { return system_->statistics(); }
  Statistics& statistics() { return system_->statistics(); }

  /// The publication hub's gauges (epoch, published sequence, retained /
  /// reader-held states) — also exported as snapshot_* metrics.
  const SnapshotHub& snapshot_hub() const { return hub_; }

  size_t queue_depth() const;
  const EditServiceOptions& options() const { return options_; }

  // --- Durability surface ----------------------------------------------------

  ServiceHealth health() const {
    return health_.load(std::memory_order_acquire);
  }
  bool read_only() const { return health() != ServiceHealth::kHealthy; }

  /// Every health transition so far, in order (each was logged exactly
  /// once when it happened).
  std::vector<HealthTransition> health_log() const;

  /// What startup recovery did (all zeros without a durability manager or
  /// with recover_on_start = false).
  const durability::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }
  /// Non-OK when startup recovery failed — the service then starts
  /// read-only degraded instead of serving an unrecovered state.
  const Status& recovery_status() const { return recovery_status_; }

  /// Publishes a checkpoint immediately (under the exclusive lock, so no
  /// batch is mid-application). FailedPrecondition without a manager.
  Status CheckpointNow();

  // --- Cross-shard two-phase commit (docs/sharding.md) -----------------------
  //
  // The participant surface ShardRouter drives. Each call takes the
  // exclusive lock (so it never interleaves with a writer batch) and
  // journals a fsynced marker record through the durability manager; no
  // in-memory edit state changes, so nothing is republished. All three
  // refuse without a durability manager (markers ARE the protocol's
  // durability), on a follower, while degraded, and — like Submit — when
  // this node has been deposed (primary_term() > the term it owns), so a
  // fenced ex-coordinator can neither promise nor decide.

  /// Phase 1: durably promise that `half` (this shard's slice of
  /// transaction `txn_id`, coordinated by shard `coordinator_shard`) can be
  /// applied. The prepare marker is fsynced before this returns; after a
  /// crash, recovery re-surfaces it via
  /// DurabilityManager::outstanding_txns() until a decision settles it.
  Status Prepare2pc(uint64_t txn_id, uint32_t coordinator_shard,
                    const EditRequest& half);

  /// Phase 2: journal the coordinator's decision. `commit` is the 2PC
  /// commit point — the decision marker is fsynced and retained (re-journaled
  /// across WAL rotations) until Forget2pc. An abort settles the local
  /// prepare and is not retained (presumed abort).
  Status Decide2pc(uint64_t txn_id, bool commit);

  /// End of transaction: the router confirmed every participant applied its
  /// half, so the retained commit decision can stop being re-journaled.
  void Forget2pc(uint64_t txn_id);

  /// Replica-assisted corruption repair (docs/durability.md): takes the
  /// exclusive lock, re-verifies that `finding` still describes the on-disk
  /// journal (a checkpoint rotation may have already retired the rot), and
  /// restores it — fetching the byte-identical region (WAL) or a verified
  /// image (checkpoint) over the replication wire from each configured
  /// peer in turn, falling back to sealing the intact live state into a
  /// fresh local checkpoint when no peer can serve it. Either way no
  /// acknowledged edit is lost: the live state already contains every
  /// committed edit — only its on-disk durability was at risk. Normally
  /// invoked by the scrubber's corruption callback; exposed so tests and
  /// operators can drive it directly. Ticks kRepairsCompleted on success.
  Status RepairCorruption(const durability::ScrubFinding& finding);

  /// The background scrubber (null unless options.scrub.enabled and a
  /// durability manager is attached).
  const durability::Scrubber* scrubber() const { return scrubber_.get(); }

  // --- Replication surface ---------------------------------------------------

  ReplicationRole role() const {
    return role_.load(std::memory_order_acquire);
  }

  /// Highest WAL sequence whose effects this instance serves: the commit
  /// point on a primary, the last applied shipped batch on a follower.
  uint64_t applied_sequence() const {
    return applied_sequence_.load(std::memory_order_acquire);
  }

  /// Deprecated bounded-staleness shim: answers only if this instance has
  /// applied at least `min_sequence` (a primary's applied_sequence() token,
  /// so a client can read-its-writes on a replica). Unavailable — and a
  /// kReplStaleReads tick — when the replica is still behind the token.
  /// Wait-free when satisfied. Equivalent to
  /// GetSnapshot({.min_sequence = min_sequence}) + Snapshot::Ask, which
  /// additionally supports waiting with ReadOptions::deadline.
  [[deprecated("use GetSnapshot(ReadOptions{.min_sequence = ...})")]]
  StatusOr<Decode> AskAtLeast(const std::string& subject,
                              const std::string& relation,
                              uint64_t min_sequence) const;

  /// Failover: turns this follower into a primary. Bumps the primary term
  /// (this node now OWNS the new term; every record it journals is stamped
  /// with it), stops the tail loop (joining any in-flight apply), seals the
  /// local WAL by publishing a checkpoint under the exclusive lock — the
  /// recovered commit point is now this instance's own durable authority,
  /// persisted together with the won term — flips the role so Submit
  /// accepts writes, and starts a replication listener on
  /// options.replication.listen_port so surviving followers can re-attach.
  /// A fencer thread then repeatedly announces the new term to the old
  /// primary's port until any reply confirms delivery, so a deposed
  /// primary on the other side of a healed partition demotes itself even
  /// if no follower ever polls it again. FailedPrecondition unless
  /// currently a follower. A listener bind failure logs a warning but does
  /// not fail the promotion: accepting writes again matters more than
  /// re-forming the group.
  Status Promote();

  /// Re-points a (typically fenced ex-)primary or follower at a new
  /// primary: drains in-flight work, tears down both replication
  /// endpoints, flips the role to follower and starts tailing
  /// `primary_port`. A fenced service transitions back to healthy — its
  /// deposed-term WAL suffix, if any, is truncated and resynced by the
  /// new primary's divergence snapshot (kReplDivergenceTruncations).
  /// FailedPrecondition without a durability manager.
  Status RejoinAsFollower(uint16_t primary_port);

  /// Highest primary term this node has observed (stamped into its polls;
  /// compared against reply stamps to detect deposed primaries).
  uint64_t primary_term() const;

  /// The primary-side shipping endpoint (null unless primary/promoted).
  const replication::ReplicationServer* replication_server() const;

  /// The follower-side tailer (null unless role is follower; survives
  /// Promote in its stopped state).
  const replication::Follower* follower() const;

  /// The follower-side repair listener (null unless
  /// options.replication.enable_repair_listener and the bind succeeded).
  /// Useful for reading back an ephemeral repair port.
  const replication::ReplicationServer* repair_server() const;

  /// Re-points replica-assisted repair at `ports` (e.g. after peers joined
  /// with ephemeral repair ports, or after a topology change). Call while
  /// no repair is in flight — peers are sampled at the start of each
  /// RepairCorruption.
  void SetRepairPeers(const std::vector<uint16_t>& ports);

  /// Replication scrape helpers (thread-safe; 0 / empty-state when the
  /// corresponding role surface is absent).
  size_t followers_connected() const;
  uint64_t min_follower_applied() const;
  uint64_t replication_lag_records() const;
  uint64_t replication_lag_batches() const;
  double replication_lag_seconds() const;
  replication::FollowerState follower_state() const;

  // --- Observability surface -------------------------------------------------

  /// Registers this service's full export surface on `registry`: every
  /// Statistics ticker (counter) and histogram (with exact-to-bucket
  /// percentiles), queue/batch gauges, the health state machine, WAL and
  /// checkpoint progress, and JSON info blobs (health transition log,
  /// recovery report, slowest traces). Providers sample at scrape time and
  /// are thread-safe; `registry` must not outlive the service.
  void ExportMetrics(obs::MetricsRegistry* registry);

  /// Admin hook: the slowest `n` recent traces as an indented span tree
  /// (also served as GET /traces?n=N when the metrics listener is on).
  std::string DumpTraces(size_t n = 10) const;

  /// The owned metrics listener (null unless options.expose_metrics was set
  /// and the bind succeeded). Useful for reading back an ephemeral port.
  const obs::MetricsServer* metrics_server() const {
    return metrics_server_.get();
  }

 private:
  struct Pending {
    EditRequest request;
    std::promise<StatusOr<EditResult>> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// TraceNowNanos() at queue push — the queue-wait span's start.
    uint64_t admitted_ns = 0;
  };

  void WriterLoop();

  /// Builds registry_ and starts the loopback listener when
  /// options_.expose_metrics is set. A bind failure logs a warning and
  /// leaves the service fully functional (scraping is best-effort).
  void StartMetricsServer();

  /// Enables the global CostProfiler and registers this service's graph
  /// weight providers: KG fan-out sampled from the published snapshot
  /// (entities) and the Horn-rule weight cache (relations). Constructor,
  /// when options_.profiling is set; Stop() retires the providers.
  void RegisterProfiler();

  /// Rebuilds the relation -> rules-touching-it weight cache when the rule
  /// base grew (it is append-only, so its size is a version). Called from
  /// PublishSnapshot, i.e. under the exclusive lock or pre-writer; the
  /// profiler's aggregator samples the cache from the scrape thread under
  /// profiler_mutex_.
  void RefreshRuleWeights();

  /// Routes one HTTP request path (metrics server thread).
  obs::MetricsServer::Response ServeHttp(const std::string& path);

  /// The single place `health_` changes. No-op when already in `to`;
  /// otherwise records + logs the transition exactly once and ticks
  /// kHealthTransitions.
  void TransitionHealth(ServiceHealth to, const std::string& reason);

  /// Half-open auto-heal probe (writer thread, WAL-degraded only): attempts
  /// a checkpoint under the exclusive lock. Success rotates the WAL clean
  /// and promotes back to kHealthy; failure returns to kReadOnlyDegraded
  /// until the next probe interval.
  void TryHeal();

  /// LogBatch with up to `wal_retry_limit` retries under capped exponential
  /// backoff. A failed append can leave torn bytes mid-log, so each retry
  /// first publishes a checkpoint — making the torn WAL redundant, rotating
  /// it clean, and covering any sequence numbers the failed attempt leaked —
  /// before re-journaling the batch. Caller holds the exclusive lock.
  Status LogBatchWithRetry(const std::vector<EditRequest>& requests,
                           Statistics* stats);

  /// Moves queued requests whose deadline has passed into `expired` (caller
  /// holds queue_mutex_; resolve them after unlocking).
  void ExpireDeadlinesLocked(std::vector<Pending>* expired);

  /// Pops the next admissible batch from queue_ (caller holds queue_mutex_).
  /// FIFO per slot: a request whose footprint overlaps any earlier admitted
  /// OR earlier skipped request stays queued, so same-slot requests never
  /// reorder. Utterances have an unknown footprint until interpreted, so
  /// they run alone and bar everything behind them.
  std::vector<Pending> NextBatch();

  /// Fails `batch` with degraded-mode kRejected results (EditResult values,
  /// not error statuses: the service made a policy decision, not an error).
  void RejectDegraded(std::vector<Pending>* batch);

  /// Starts the role-appropriate replication endpoint (constructor, after
  /// recovery; also Promote for the primary side). Caller must NOT hold
  /// repl_mutex_.
  void StartReplication();

  /// Fencing: a poll stamped with `term` (higher than ours) arrived — some
  /// other node won an election. Sheds writes via ServiceHealth::kFenced
  /// and best-effort persists the adopted term so a restart stays fenced.
  /// Called from a replication handler thread, exactly once per server.
  void OnDeposed(uint64_t term);

  /// Promotion fencer (its own thread): dials the deposed primary's port
  /// and announces `term` with an empty poll until any reply confirms the
  /// old primary has observed it (a kReject{kDeposed} is the expected
  /// answer), the service stops, or RejoinAsFollower retires the fencer.
  /// Capped backoff between attempts; survives partitions by retrying.
  void FencerLoop(uint16_t old_primary_port, uint64_t term);

  /// Joins the fencer thread if one is running. Idempotent.
  void StopFencer();

  /// RepairCorruption's WAL half (caller holds the exclusive lock): checks
  /// the finding is still live, fetches [last_intact+1 .. committed] from
  /// each peer, validates the frames decode contiguously, and splices them
  /// in via DurabilityManager::RepairWalRegion.
  Status RepairWal(const durability::ScrubFinding& finding,
                   const std::vector<uint16_t>& peers, uint64_t term);

  /// RepairCorruption's checkpoint half (caller holds the exclusive lock):
  /// re-verifies the local image, then fetches and verifies a peer's image
  /// and accepts it only if its sequence still chains with the local WAL.
  Status RepairCheckpoint(const std::vector<uint16_t>& peers, uint64_t term);

  /// Follower hook: journals one shipped batch's raw frames (BEFORE apply,
  /// like the primary's writer), applies its edit records through the same
  /// validated path recovery uses, and advances applied_sequence().
  Status ApplyReplicatedBatch(const replication::ShippedBatch& batch);

  /// Follower hook: installs a shipped checkpoint image under the
  /// exclusive lock and jumps applied_sequence() to its sequence.
  Status InstallReplicatedSnapshot(uint64_t checkpoint_sequence,
                                   const std::string& bytes);

  /// Freezes the system into an immutable ReadState and publishes it at
  /// `sequence`. Caller must hold the exclusive lock (or otherwise guarantee
  /// no concurrent mutation: the constructor calls it before the writer
  /// starts), and must publish BEFORE advancing applied_sequence_ past
  /// `sequence` — a reader that observes the token must find a state that
  /// contains it. Ticks kSnapshotsPublished.
  void PublishSnapshot(uint64_t sequence);

  std::unique_ptr<OneEditSystem> system_;
  EditServiceOptions options_;
  durability::DurabilityManager* durability_ = nullptr;
  std::atomic<ServiceHealth> health_{ServiceHealth::kHealthy};
  durability::RecoveryReport recovery_report_;
  Status recovery_status_ = Status::OK();

  /// True when the degradation came from a WAL/IO failure — the only kind
  /// auto-heal retries (a failed startup recovery needs an operator).
  std::atomic<bool> wal_degraded_{false};
  /// Guards health_log_ and serializes TransitionHealth.
  mutable std::mutex health_mutex_;
  std::vector<HealthTransition> health_log_;
  uint64_t health_transitions_seen_ = 0;
  /// Validation seed for batches when no durability manager assigns WAL
  /// sequences (writer thread only).
  uint64_t nodur_seed_ = 0;

  /// Serializes mutators (writer batches, replication applies, WithExclusive
  /// surgery). Snapshot readers never touch it; only the kLockedLegacy read
  /// shim still takes it shared.
  mutable std::shared_mutex rw_mutex_;
  /// Write-preference gate for the legacy shared-lock read path: glibc's
  /// shared_mutex favors readers, so a steady legacy reader stream would
  /// starve the writer forever. An exclusive acquirer holds this gate while
  /// waiting for rw_mutex_; legacy readers touch it first, so they queue
  /// behind the writer instead of starving it. Snapshot reads bypass both.
  mutable std::mutex writer_gate_;

  /// The epoch-based publication point between the writer and snapshot
  /// readers (serving/snapshot.h). Published under the exclusive lock,
  /// pinned lock-free by readers.
  SnapshotHub hub_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable idle_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool writer_busy_ = false;

  std::thread writer_;

  /// Export surface (docs/observability.md). The registry's providers
  /// capture `this`, so the server is stopped first in Stop().
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::MetricsServer> metrics_server_;

  /// Relation weights for the cost profiler: how many Horn rules touch
  /// each relation. profiler_mutex_ guards the map (the aggregator samples
  /// it from the scrape thread); the stamp is writer-side only and keys the
  /// cache on the append-only rule count.
  mutable std::mutex profiler_mutex_;
  std::unordered_map<std::string, uint64_t> rule_weights_;
  size_t rule_weight_stamp_ = static_cast<size_t>(-1);

  /// Replication (docs/replication.md). repl_mutex_ guards the two
  /// pointers' lifecycle (Promote swaps them while the scrape thread
  /// samples); role_ and applied_sequence_ are lock-free.
  std::atomic<ReplicationRole> role_{ReplicationRole::kStandalone};
  std::atomic<uint64_t> applied_sequence_{0};
  mutable std::mutex repl_mutex_;
  std::unique_ptr<replication::ReplicationServer> repl_server_;
  std::unique_ptr<replication::Follower> follower_;
  /// Follower-side repair listener (see ReplicationOptions
  /// .enable_repair_listener); guarded by repl_mutex_ like the other two.
  std::unique_ptr<replication::ReplicationServer> repair_server_;

  /// Background integrity scrubber (null unless enabled); created after
  /// recovery, stopped first in Stop() — its corruption callback re-enters
  /// the service via RepairCorruption.
  std::unique_ptr<durability::Scrubber> scrubber_;

  /// Promotion fencer (see FencerLoop). fencer_mutex_ guards the thread
  /// handle; fencer_stop_ is the loop's exit flag, with its own wait
  /// mutex/CV so StopFencer can join without racing the backoff sleep.
  std::mutex fencer_mutex_;
  std::mutex fencer_wait_mutex_;
  std::condition_variable fencer_wake_;
  std::thread fencer_;
  std::atomic<bool> fencer_stop_{false};
};

}  // namespace serving
}  // namespace oneedit

#endif  // ONEEDIT_SERVING_EDIT_SERVICE_H_
