#include "serving/edit_service.h"

#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace oneedit {
namespace serving {
namespace {

/// The KG slots a request may write: its subject's slot, plus the object's
/// (reverse edits per Algorithm 2 write the object's forward slot too).
void AppendFootprint(const EditRequest& request,
                     std::vector<std::string>* out) {
  out->push_back(request.triple.subject);
  out->push_back(request.triple.object);
}

bool Overlaps(const EditRequest& request,
              const std::unordered_set<std::string>& entities) {
  return entities.count(request.triple.subject) > 0 ||
         entities.count(request.triple.object) > 0;
}

EditResult DegradedRejection(const std::string& why) {
  EditResult result;
  result.kind = EditResult::Kind::kRejected;
  result.message = "service is read-only degraded: " + why;
  return result;
}

}  // namespace

std::string ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kHealthy:
      return "healthy";
    case ServiceHealth::kReadOnlyDegraded:
      return "read_only_degraded";
  }
  return "unknown";
}

EditService::EditService(std::unique_ptr<OneEditSystem> system,
                         const EditServiceOptions& options)
    : system_(std::move(system)),
      options_(options),
      durability_(options.durability) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  if (durability_ != nullptr && options_.recover_on_start) {
    // Recover before the writer exists: the system is still single-threaded
    // here, so replay needs no locks.
    StatusOr<durability::RecoveryReport> recovered =
        durability_->Recover(system_.get());
    if (recovered.ok()) {
      recovery_report_ = *recovered;
    } else {
      // Serving an unrecovered state could silently drop acknowledged
      // edits; refuse writes instead and let reads answer what we have.
      recovery_status_ = recovered.status();
      health_.store(ServiceHealth::kReadOnlyDegraded,
                    std::memory_order_release);
    }
  }
  writer_ = std::thread(&EditService::WriterLoop, this);
}

StatusOr<std::unique_ptr<EditService>> EditService::Create(
    KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config,
    const EditServiceOptions& options) {
  ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<OneEditSystem> system,
                           OneEditSystem::Create(kg, model, config));
  return std::make_unique<EditService>(std::move(system), options);
}

EditService::~EditService() { Stop(); }

std::future<StatusOr<EditResult>> EditService::Submit(EditRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<StatusOr<EditResult>> future = pending.promise.get_future();

  Statistics& stats = system_->statistics();
  if (read_only()) {
    stats.Add(Ticker::kDegradedRejects);
    pending.promise.set_value(
        DegradedRejection("write-ahead logging is unavailable"));
    return future;
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (!stopping_ && queue_.size() >= options_.queue_capacity) {
      if (options_.reject_when_full) {
        lock.unlock();
        stats.Add(Ticker::kServingRejected);
        pending.promise.set_value(Status::ResourceExhausted(
            "edit queue full (capacity " +
            std::to_string(options_.queue_capacity) + ")"));
        return future;
      }
      queue_not_full_.wait(lock, [this] {
        return stopping_ || queue_.size() < options_.queue_capacity;
      });
    }
    if (stopping_) {
      lock.unlock();
      stats.Add(Ticker::kServingRejected);
      pending.promise.set_value(
          Status::Unavailable("EditService is stopped"));
      return future;
    }
    queue_.push_back(std::move(pending));
    stats.Add(Ticker::kServingSubmitted);
    stats.Record(Histogram::kServingQueueDepth, queue_.size());
  }
  queue_not_empty_.notify_one();
  return future;
}

Decode EditService::Ask(const std::string& subject,
                        const std::string& relation) const {
  // Touch the writer gate first: if a writer is waiting for the exclusive
  // lock it holds the gate, and this reader queues behind it.
  { std::lock_guard<std::mutex> gate(writer_gate_); }
  std::shared_lock<std::shared_mutex> lock(rw_mutex_);
  Decode decode = system_->Ask(subject, relation);
  system_->statistics().Add(Ticker::kServingReads);
  return decode;
}

void EditService::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !writer_busy_; });
}

void EditService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      // Already stopped; the writer is joined below only once.
    }
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (writer_.joinable()) writer_.join();

  // The writer has exited; whatever is still queued will never run.
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    orphans.swap(queue_);
  }
  for (Pending& pending : orphans) {
    system_->statistics().Add(Ticker::kServingRejected);
    pending.promise.set_value(
        Status::Unavailable("EditService stopped before this request ran"));
  }
  idle_.notify_all();
}

Status EditService::CheckpointNow() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "EditService has no durability manager attached");
  }
  return WithExclusive([this](OneEditSystem& system) {
    return durability_->Checkpoint(system, &system.statistics());
  });
}

void EditService::RejectDegraded(std::vector<Pending>* batch) {
  const std::string why = recovery_status_.ok()
                              ? std::string("write-ahead logging is unavailable")
                              : "startup recovery failed: " +
                                    recovery_status_.ToString();
  for (Pending& pending : *batch) {
    pending.promise.set_value(DegradedRejection(why));
  }
}

size_t EditService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::vector<EditService::Pending> EditService::NextBatch() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  if (!options_.coalesce) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    return batch;
  }

  // Entities touched by admitted requests, and by skipped ones: overlapping
  // either keeps a request queued so per-slot order is preserved.
  std::unordered_set<std::string> admitted;
  std::unordered_set<std::string> blocked;
  std::vector<std::string> footprint;
  auto it = queue_.begin();
  while (it != queue_.end() && batch.size() < options_.max_batch_size) {
    const EditRequest& request = it->request;
    if (request.op == EditRequest::Op::kUtterance) {
      // Unknown footprint until interpreted: run alone, bar what follows.
      if (batch.empty()) {
        batch.push_back(std::move(*it));
        queue_.erase(it);
      }
      break;
    }
    if (Overlaps(request, admitted) || Overlaps(request, blocked)) {
      footprint.clear();
      AppendFootprint(request, &footprint);
      blocked.insert(footprint.begin(), footprint.end());
      ++it;
      continue;
    }
    footprint.clear();
    AppendFootprint(request, &footprint);
    admitted.insert(footprint.begin(), footprint.end());
    batch.push_back(std::move(*it));
    it = queue_.erase(it);
  }
  return batch;
}

void EditService::WriterLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // Stop() fails whatever is left.
      batch = NextBatch();
      writer_busy_ = !batch.empty();
    }
    queue_not_full_.notify_all();
    if (batch.empty()) continue;

    std::vector<EditRequest> requests;
    requests.reserve(batch.size());
    for (const Pending& pending : batch) requests.push_back(pending.request);

    Statistics& stats = system_->statistics();
    bool degraded = read_only();
    std::vector<StatusOr<EditResult>> results;
    if (!degraded) {
      std::unique_lock<std::mutex> gate(writer_gate_);
      std::unique_lock<std::shared_mutex> write_lock(rw_mutex_);
      gate.unlock();
      if (durability_ != nullptr) {
        // Durability protocol: the batch must be journaled and fsynced
        // BEFORE it is applied — an acknowledged edit is always on disk.
        const Status logged =
            durability_->LogBatch(requests, system_->config().method, &stats);
        if (!logged.ok()) {
          ONEEDIT_LOG(Error) << "edit WAL commit failed, degrading to "
                                "read-only: "
                             << logged.ToString();
          degraded = true;
        }
      }
      if (!degraded) {
        results = system_->EditBatch(requests);
        if (durability_ != nullptr) {
          // A checkpoint failure is survivable — the WAL still covers
          // every committed edit — so it does not degrade the service.
          const Status cadence =
              durability_->OnBatchApplied(*system_, requests.size(), &stats);
          if (!cadence.ok()) {
            ONEEDIT_LOG(Warning)
                << "checkpoint failed (WAL still intact): "
                << cadence.ToString();
          }
        }
      }
    }
    if (degraded) {
      health_.store(ServiceHealth::kReadOnlyDegraded,
                    std::memory_order_release);
      stats.Add(Ticker::kDegradedRejects, batch.size());
      RejectDegraded(&batch);
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        writer_busy_ = false;
      }
      idle_.notify_all();
      continue;
    }
    stats.Add(Ticker::kServingBatches);
    stats.Record(Histogram::kServingBatchSize, batch.size());
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      stats.Record(
          Histogram::kServingLatencyMicros,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - batch[i].enqueued)
                  .count()));
      batch[i].promise.set_value(std::move(results[i]));
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      writer_busy_ = false;
    }
    idle_.notify_all();
  }
}

}  // namespace serving
}  // namespace oneedit
