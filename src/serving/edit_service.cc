#include "serving/edit_service.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "durability/checkpoint.h"
#include "obs/profiler.h"
#include "replication/repair.h"
#include "util/logging.h"
#include "util/net.h"

namespace oneedit {
namespace serving {
namespace {

/// The KG slots a request may write: its subject's slot, plus the object's
/// (reverse edits per Algorithm 2 write the object's forward slot too).
void AppendFootprint(const EditRequest& request,
                     std::vector<std::string>* out) {
  out->push_back(request.triple.subject);
  out->push_back(request.triple.object);
}

bool Overlaps(const EditRequest& request,
              const std::unordered_set<std::string>& entities) {
  return entities.count(request.triple.subject) > 0 ||
         entities.count(request.triple.object) > 0;
}

EditResult DegradedRejection(const std::string& why) {
  EditResult result;
  result.kind = EditResult::Kind::kRejected;
  result.message = "service is read-only degraded: " + why;
  return result;
}

EditResult ReplicaRejection() {
  EditResult result;
  result.kind = EditResult::Kind::kRejected;
  result.message =
      "replica is read-only: submit writes to the primary (or Promote() "
      "this follower)";
  return result;
}

EditResult FencedRejection(uint64_t observed_term, uint64_t owned_term) {
  EditResult result;
  result.kind = EditResult::Kind::kRejected;
  result.message =
      "write fenced: a primary with term " + std::to_string(observed_term) +
      " exists (this node owns term " + std::to_string(owned_term) +
      "); RejoinAsFollower() to reconcile";
  return result;
}

/// Closes a request's trace: every request span tree is rooted by exactly
/// one "request" span recorded when the promise resolves, whatever path
/// (applied, expired, rejected, degraded) resolved it.
void FinishTrace(const obs::TraceContext& ctx) {
  obs::TraceRecorder::Global().RecordRoot(ctx, "request",
                                          obs::TraceNowNanos());
}

/// Rows each profiler_* labeled top-K gauge family exposes per scrape.
constexpr size_t kProfilerTopK = 10;
/// /profile?k= upper bound (labeled exposition is O(k) strings per row).
constexpr size_t kMaxProfileTopK = 64;
/// /traces?n= upper bound (trace reconstruction is the expensive part).
constexpr size_t kMaxTraceDump = 100;

/// What a count-valued query parameter ("?n=25") parsed to.
enum class QueryParse {
  kAbsent,  ///< parameter not present: use the route's default
  kOk,      ///< a clean decimal number, clamped into [0, max]
  kBad,     ///< present but empty or non-numeric: the route must 400
};

/// Strict parser for `key=<decimal>` in `path`'s query string. Unlike the
/// old strtoul treatment, junk values ("?n=abc", "?n=") are surfaced as
/// kBad — the endpoint answers 400 instead of silently serving a default —
/// and oversized numerics clamp to `max_value` instead of overflowing.
QueryParse ParseCountParam(const std::string& path, const std::string& key,
                           size_t max_value, size_t* out) {
  const size_t qmark = path.find('?');
  if (qmark == std::string::npos) return QueryParse::kAbsent;
  const std::string query = path.substr(qmark + 1);
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string param = query.substr(pos, amp - pos);
    pos = amp + 1;
    const size_t eq = param.find('=');
    if (eq == std::string::npos) {
      if (param == key) return QueryParse::kBad;  // bare "?n" has no value
      continue;
    }
    if (param.compare(0, eq, key) != 0) continue;
    const std::string value = param.substr(eq + 1);
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      return QueryParse::kBad;
    }
    if (value.size() > 9) {  // numeric but absurd: clamp, don't overflow
      *out = max_value;
      return QueryParse::kOk;
    }
    *out = std::min<size_t>(std::stoul(value), max_value);
    return QueryParse::kOk;
  }
  return QueryParse::kAbsent;
}

obs::MetricsServer::Response BadQueryResponse(const std::string& key,
                                              size_t max_value) {
  obs::MetricsServer::Response response;
  response.status = 400;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "bad query parameter '" + key +
                  "': expected a decimal count (max " +
                  std::to_string(max_value) + ")\n";
  return response;
}

}  // namespace

std::string ReplicationRoleName(ReplicationRole role) {
  switch (role) {
    case ReplicationRole::kStandalone:
      return "standalone";
    case ReplicationRole::kPrimary:
      return "primary";
    case ReplicationRole::kFollower:
      return "follower";
  }
  return "unknown";
}

std::string ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kHealthy:
      return "healthy";
    case ServiceHealth::kReadOnlyDegraded:
      return "read_only_degraded";
    case ServiceHealth::kHalfOpenProbing:
      return "half_open_probing";
    case ServiceHealth::kFenced:
      return "fenced";
  }
  return "unknown";
}

EditService::EditService(std::unique_ptr<OneEditSystem> system,
                         const EditServiceOptions& options)
    : system_(std::move(system)),
      options_(options),
      durability_(options.durability),
      hub_(options.snapshot_retention) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  // Enable-only: turning the process-wide recorder OFF here would disarm
  // another service (or an overhead A/B harness) that turned it on.
  if (options_.tracing) obs::TraceRecorder::Global().SetEnabled(true);
  if (options_.profiling) RegisterProfiler();
  if (durability_ != nullptr && options_.recover_on_start) {
    // Recover before the writer exists: the system is still single-threaded
    // here, so replay needs no locks. With validation on, replayed batches
    // run through the same SelfHealer the live writer uses: validation is a
    // deterministic function of (pre-batch state, first WAL sequence), so a
    // crash that outran a quarantine verdict's journal record still
    // converges on the identical post-validation state.
    durability::ReplayApplier applier;
    if (options_.self_heal.validate_after_apply) {
      applier = [this](const durability::ReplayBatch& batch) {
        SelfHealer healer(system_.get(), options_.self_heal);
        (void)healer.ApplyValidated(batch.requests, batch.first_sequence);
      };
    }
    StatusOr<durability::RecoveryReport> recovered =
        durability_->Recover(system_.get(), applier);
    if (recovered.ok()) {
      recovery_report_ = *recovered;
      if (recovery_report_.wal_corruption_detected) {
        // Salvage recovery: the intact prefix was replayed but bytes from
        // the corrupt frame on were abandoned — possibly acknowledged
        // edits. Start degraded AS a WAL degradation: the auto-heal probe
        // re-seals the salvaged state into a checkpoint (rotating the
        // corrupt log away) and promotes back to healthy, while the
        // scrubber's repair path may pull the lost region from a replica
        // first.
        wal_degraded_.store(true, std::memory_order_release);
        TransitionHealth(
            ServiceHealth::kReadOnlyDegraded,
            "recovery salvaged the WAL around corruption at byte " +
                std::to_string(recovery_report_.wal_corrupt_offset) + " (" +
                std::to_string(recovery_report_.wal_lost_bytes) +
                " bytes abandoned)");
      }
    } else {
      // Serving an unrecovered state could silently drop acknowledged
      // edits; refuse writes instead and let reads answer what we have.
      // Not a WAL degradation: auto-heal must not paper over a recovery
      // failure, so this state needs an operator.
      recovery_status_ = recovered.status();
      TransitionHealth(ServiceHealth::kReadOnlyDegraded,
                       "startup recovery failed: " +
                           recovery_status_.ToString());
    }
  }
  if (options_.replication.role != ReplicationRole::kStandalone &&
      durability_ == nullptr) {
    // The WAL is the thing replication ships; without one there is nothing
    // to stream or install. Stay standalone rather than half-replicate.
    ONEEDIT_LOG(Error) << "replication role "
                       << ReplicationRoleName(options_.replication.role)
                       << " requires a durability manager; staying "
                          "standalone";
    options_.replication.role = ReplicationRole::kStandalone;
  }
  role_.store(options_.replication.role, std::memory_order_release);
  if (durability_ != nullptr) {
    applied_sequence_.store(durability_->committed_sequence(),
                            std::memory_order_release);
    if (role() == ReplicationRole::kPrimary &&
        durability_->primary_term() > durability_->owned_term()) {
      // Boot fence: the recovered checkpoint observed a term this node
      // never won — it was deposed before it went down, and the cluster
      // may have moved on. Refuse writes until RejoinAsFollower (or an
      // operator Promote) reconciles the history.
      TransitionHealth(
          ServiceHealth::kFenced,
          "recovered primary_term " +
              std::to_string(durability_->primary_term()) +
              " above owned term " +
              std::to_string(durability_->owned_term()) +
              ": this node was deposed before it last stopped");
    }
  }
  if (durability_ != nullptr && durability_->tmp_files_swept() > 0) {
    // Open's sweep of stale checkpoint temporaries (leaked by a crash
    // between write and rename) happened before this service existed;
    // surface it on this instance's counters.
    system_->statistics().Add(Ticker::kTmpFilesSwept,
                              durability_->tmp_files_swept());
  }
  // First publication: the recovered (or empty) state becomes readable
  // before any concurrent actor exists — readers never see a null hub, and
  // a follower's first shipped batch republishes from here.
  PublishSnapshot(applied_sequence());
  StartReplication();
  if (durability_ != nullptr && options_.scrub.enabled) {
    scrubber_ = std::make_unique<durability::Scrubber>(
        durability_, &system_->statistics(), options_.scrub,
        [this](const durability::ScrubFinding& finding) {
          const Status repaired = RepairCorruption(finding);
          if (!repaired.ok()) {
            ONEEDIT_LOG(Warning) << "replica-assisted repair failed: "
                                 << repaired.ToString();
          }
        });
    scrubber_->Start();
  }
  writer_ = std::thread(&EditService::WriterLoop, this);
  StartMetricsServer();
}

StatusOr<std::unique_ptr<EditService>> EditService::Create(
    KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config,
    const EditServiceOptions& options) {
  ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<OneEditSystem> system,
                           OneEditSystem::Create(kg, model, config));
  return std::make_unique<EditService>(std::move(system), options);
}

EditService::~EditService() { Stop(); }

std::future<StatusOr<EditResult>> EditService::Submit(EditRequest request) {
  obs::TraceRecorder& tracer = obs::TraceRecorder::Global();
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  if (!pending.request.trace.active()) {
    // Trace starts at submission; callers may also mint one earlier to
    // fold their own pre-submit work into the trace.
    pending.request.trace = tracer.StartTrace();
  }
  const obs::TraceContext trace = pending.request.trace;
  uint64_t admitted_ns = 0;
  std::future<StatusOr<EditResult>> future = pending.promise.get_future();

  Statistics& stats = system_->statistics();
  if (pending.request.expired(pending.enqueued)) {
    stats.Add(Ticker::kDeadlineExpired);
    FinishTrace(trace);
    pending.promise.set_value(
        Status::DeadlineExceeded("request deadline already expired"));
    return future;
  }
  if (role() == ReplicationRole::kFollower) {
    // A policy decision, not an error, mirroring degraded mode: replicas
    // serve reads; the primary owns the write path until Promote().
    stats.Add(Ticker::kDegradedRejects);
    FinishTrace(trace);
    pending.promise.set_value(ReplicaRejection());
    return future;
  }
  if (health() == ServiceHealth::kFenced) {
    // Fencing is its own rejection: the write path is intact, but another
    // primary owns the term and acking here would fork history.
    stats.Add(Ticker::kReplFencedWrites);
    FinishTrace(trace);
    pending.promise.set_value(FencedRejection(
        durability_ != nullptr ? durability_->primary_term() : 0,
        durability_ != nullptr ? durability_->owned_term() : 0));
    return future;
  }
  if (read_only()) {
    stats.Add(Ticker::kDegradedRejects);
    FinishTrace(trace);
    pending.promise.set_value(
        DegradedRejection("write-ahead logging is unavailable"));
    return future;
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (!stopping_ && queue_.size() >= options_.queue_capacity) {
      if (options_.reject_when_full) {
        lock.unlock();
        stats.Add(Ticker::kServingRejected);
        FinishTrace(trace);
        pending.promise.set_value(Status::ResourceExhausted(
            "edit queue full (capacity " +
            std::to_string(options_.queue_capacity) + ")"));
        return future;
      }
      const auto admissible = [this] {
        return stopping_ || queue_.size() < options_.queue_capacity;
      };
      if (pending.request.deadline.has_value()) {
        // Backpressure must not outlive the deadline: give up at the
        // deadline instant instead of blocking indefinitely.
        if (!queue_not_full_.wait_until(lock, *pending.request.deadline,
                                        admissible)) {
          lock.unlock();
          stats.Add(Ticker::kDeadlineExpired);
          FinishTrace(trace);
          pending.promise.set_value(Status::DeadlineExceeded(
              "deadline expired while waiting for queue capacity"));
          return future;
        }
      } else {
        queue_not_full_.wait(lock, admissible);
      }
    }
    if (stopping_) {
      lock.unlock();
      stats.Add(Ticker::kServingRejected);
      FinishTrace(trace);
      pending.promise.set_value(
          Status::Unavailable("EditService is stopped"));
      return future;
    }
    admitted_ns = obs::TraceNowNanos();
    pending.admitted_ns = admitted_ns;
    queue_.push_back(std::move(pending));
    stats.Add(Ticker::kServingSubmitted);
    stats.Record(Histogram::kServingQueueDepth, queue_.size());
  }
  // "admission": Submit entry (trace start) until the slot in the queue was
  // won — covers backpressure waits. "queue-wait" picks up from the same
  // instant, so the two spans tile the pre-writer wait without overlap.
  if (trace.active()) {
    tracer.Record(trace, "admission", trace.start_ns, admitted_ns);
  }
  queue_not_empty_.notify_one();
  return future;
}

StatusOr<Snapshot> EditService::GetSnapshot(const ReadOptions& options) const {
  obs::TraceRecorder& tracer = obs::TraceRecorder::Global();
  const obs::TraceContext trace = tracer.StartTrace();
  const auto start = std::chrono::steady_clock::now();
  Statistics& stats = system_->statistics();
  StatusOr<Snapshot> snapshot = hub_.GetSnapshot(options);
  if (snapshot.ok()) {
    // One served read view. Reads against the pinned handle are pure
    // pointer chases with nothing service-wide left to account, so the
    // read telemetry lives here: a pin never waits on the writer lock
    // (recorded as the explicit 0 the bench's no-block gate asserts on),
    // and the latency histogram covers resolve-options-to-state — the
    // only part of a snapshot read whose duration the service controls.
    stats.Add(Ticker::kServingReads);
    stats.Record(Histogram::kServingReadLockWaitMicros, 0);
    stats.Record(Histogram::kServingReadMicros,
                 static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count()));
  } else if (snapshot.status().IsUnavailable() && options.min_sequence > 0) {
    // The read carried a read-your-writes token this instance has not
    // applied yet — the replication staleness signal.
    stats.Add(Ticker::kReplStaleReads);
  }
  tracer.RecordRoot(trace, "ask", obs::TraceNowNanos());
  return snapshot;
}

void EditService::PublishSnapshot(uint64_t sequence) {
  RefreshRuleWeights();
  hub_.Publish(system_->SnapshotReadView(), sequence);
  system_->statistics().Add(Ticker::kSnapshotsPublished);
}

void EditService::RegisterProfiler() {
  // Enable-only, like tracing: turning the process-wide profiler OFF here
  // would disarm another service (or an overhead A/B harness).
  obs::CostProfiler& profiler = obs::CostProfiler::Global();
  profiler.SetEnabled(true);
  // Entity weight: KG fan-out sampled from the currently published read
  // state — one lock-free snapshot pin per aggregation cycle, never a
  // writer lock.
  profiler.SetEntityWeightProvider(
      [this](const std::vector<std::string>& names) {
        std::vector<uint64_t> weights(names.size(), 0);
        const std::shared_ptr<const ReadState> state = hub_.Acquire();
        if (state != nullptr) {
          for (size_t i = 0; i < names.size(); ++i) {
            weights[i] = state->view.kg.FanOut(names[i]);
          }
        }
        return weights;
      },
      this);
  // Relation weight: Horn rules touching the relation, from the cache
  // PublishSnapshot refreshes whenever the rule base grows.
  profiler.SetRelationWeightProvider(
      [this](const std::vector<std::string>& names) {
        std::vector<uint64_t> weights(names.size(), 0);
        std::lock_guard<std::mutex> lock(profiler_mutex_);
        for (size_t i = 0; i < names.size(); ++i) {
          const auto it = rule_weights_.find(names[i]);
          if (it != rule_weights_.end()) weights[i] = it->second;
        }
        return weights;
      },
      this);
}

void EditService::RefreshRuleWeights() {
  const RuleEngine& rules = system_->kg().rules();
  if (rules.size() == rule_weight_stamp_) return;
  std::unordered_map<std::string, uint64_t> weights;
  const RelationSchema& schema = system_->kg().schema();
  for (const HornRule& rule : rules.rules()) {
    for (const RelationId relation : {rule.body1, rule.body2, rule.head}) {
      if (relation == kInvalidId) continue;
      ++weights[schema.Name(relation)];
    }
  }
  {
    std::lock_guard<std::mutex> lock(profiler_mutex_);
    rule_weights_ = std::move(weights);
  }
  rule_weight_stamp_ = rules.size();
}

Decode EditService::Ask(const std::string& subject,
                        const std::string& relation) const {
  obs::TraceRecorder& tracer = obs::TraceRecorder::Global();
  const obs::TraceContext trace = tracer.StartTrace();
  const auto start = std::chrono::steady_clock::now();
  Statistics& stats = system_->statistics();
  Decode decode;
  if (options_.read_path == ReadPath::kLockedLegacy) {
    // Touch the writer gate first: if a writer is waiting for the exclusive
    // lock it holds the gate, and this reader queues behind it.
    { std::lock_guard<std::mutex> gate(writer_gate_); }
    std::shared_lock<std::shared_mutex> lock(rw_mutex_);
    stats.Record(Histogram::kServingReadLockWaitMicros,
                 static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count()));
    decode = system_->Ask(subject, relation);
  } else {
    // Snapshot path: pin the published state; no lock exists to wait on
    // (recorded as 0 so the bench can assert the queue-wait is gone).
    stats.Record(Histogram::kServingReadLockWaitMicros, 0);
    const std::shared_ptr<const ReadState> state = hub_.Acquire();
    decode = state->view.Ask(subject, relation);
  }
  const uint64_t read_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  stats.Add(Ticker::kServingReads);
  stats.Record(Histogram::kServingReadMicros, read_micros);
  // Both shim branches read the view directly (never through
  // Snapshot::Ask's hook), so the decode is cost-accounted here.
  {
    obs::CostProfiler& profiler = obs::CostProfiler::Global();
    if (profiler.enabled()) {
      profiler.RecordRead(subject, relation, read_micros);
    }
  }
  tracer.RecordRoot(trace, "ask", obs::TraceNowNanos());
  return decode;
}

void EditService::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !writer_busy_; });
}

void EditService::Stop() {
  // The scrubber's corruption callback re-enters the service (exclusive
  // lock, peer dials); retire it before anything it touches shuts down.
  if (scrubber_ != nullptr) scrubber_->Stop();
  // The scrape handler reads through `this`; take the listener down before
  // anything it samples starts shutting down.
  if (metrics_server_ != nullptr) metrics_server_->Stop();
  // The profiler's weight providers sample this service's snapshot hub and
  // rule-weight cache; retire them (ours only — a newer registration by
  // another service survives) before any of that shuts down.
  obs::CostProfiler::Global().ClearWeightProviders(this);
  // The fencer dials out on its own thread; retire it before the endpoints
  // it might still be poking go away.
  StopFencer();
  // Replication next, and before the writer joins: a writer blocked in a
  // quorum WaitForAcks is released by the server's stop, and a follower
  // tail apply must finish before the exclusive-lock world shuts down.
  {
    std::lock_guard<std::mutex> lock(repl_mutex_);
    if (follower_ != nullptr) follower_->Stop();
    if (repl_server_ != nullptr) repl_server_->Stop();
    if (repair_server_ != nullptr) repair_server_->Stop();
  }
  // Wake GetSnapshot waiters blocked on a min_sequence that will now never
  // arrive; already-pinned handles keep serving.
  hub_.Stop();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      // Already stopped; the writer is joined below only once.
    }
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (writer_.joinable()) writer_.join();

  // The writer has exited; whatever is still queued will never run.
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    orphans.swap(queue_);
  }
  for (Pending& pending : orphans) {
    system_->statistics().Add(Ticker::kServingRejected);
    FinishTrace(pending.request.trace);
    pending.promise.set_value(
        Status::Unavailable("EditService stopped before this request ran"));
  }
  idle_.notify_all();
}

std::vector<HealthTransition> EditService::health_log() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_log_;
}

void EditService::TransitionHealth(ServiceHealth to,
                                   const std::string& reason) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  const ServiceHealth from = health_.load(std::memory_order_acquire);
  if (from == to) return;
  health_.store(to, std::memory_order_release);
  HealthTransition transition;
  transition.from = from;
  transition.to = to;
  transition.reason = reason;
  transition.sequence = ++health_transitions_seen_;
  system_->statistics().Add(Ticker::kHealthTransitions);
  ONEEDIT_LOG(Warning) << "EditService health: " << ServiceHealthName(from)
                       << " -> " << ServiceHealthName(to) << " [#"
                       << transition.sequence << "] " << reason;
  health_log_.push_back(std::move(transition));
}

void EditService::TryHeal() {
  TransitionHealth(ServiceHealth::kHalfOpenProbing,
                   "probing whether the durability environment recovered");
  Status healed;
  {
    std::unique_lock<std::mutex> gate(writer_gate_);
    std::unique_lock<std::shared_mutex> write_lock(rw_mutex_);
    gate.unlock();
    // A successful checkpoint proves the env can persist state again AND
    // repairs the WAL: whatever torn bytes the failure left are rotated
    // away, and any sequence numbers a failed append leaked are covered by
    // the checkpoint's last_sequence.
    healed = durability_->Checkpoint(*system_, &system_->statistics());
  }
  if (healed.ok()) {
    wal_degraded_.store(false, std::memory_order_release);
    TransitionHealth(ServiceHealth::kHealthy,
                     "heal probe succeeded: checkpoint published, WAL "
                     "rotated clean");
  } else {
    TransitionHealth(ServiceHealth::kReadOnlyDegraded,
                     "heal probe failed: " + healed.ToString());
  }
}

Status EditService::LogBatchWithRetry(
    const std::vector<EditRequest>& requests, Statistics* stats) {
  Status logged =
      durability_->LogBatch(requests, system_->config().method, stats);
  std::chrono::milliseconds backoff = options_.self_heal.wal_retry_backoff;
  for (size_t attempt = 0;
       !logged.ok() && !logged.IsResourceExhausted() &&
       attempt < options_.self_heal.wal_retry_limit;
       ++attempt) {
    stats->Add(Ticker::kWalRetries);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, options_.self_heal.wal_retry_backoff_cap);
    // The failed append may have left torn bytes mid-log, so a bare
    // re-append would corrupt the journal for replay. A checkpoint makes
    // the torn WAL redundant, rotates it clean, and covers any sequence
    // numbers the failed attempt consumed; the batch is then re-journaled
    // onto the fresh log.
    const Status repaired = durability_->Checkpoint(*system_, stats);
    if (!repaired.ok()) {
      logged = repaired;
      continue;
    }
    logged = durability_->LogBatch(requests, system_->config().method, stats);
  }
  return logged;
}

void EditService::ExpireDeadlinesLocked(std::vector<Pending>* expired) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->request.expired(now)) {
      expired->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

Status EditService::CheckpointNow() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "EditService has no durability manager attached");
  }
  return WithExclusive([this](OneEditSystem& system) {
    return durability_->Checkpoint(system, &system.statistics());
  });
}

namespace {

/// Shared admission check for the 2PC participant surface: markers are
/// durability promises, so every state that sheds writes also refuses them.
Status Check2pcWritable(const EditService& service,
                        const durability::DurabilityManager* durability) {
  if (durability == nullptr) {
    return Status::FailedPrecondition(
        "two-phase commit requires a durability manager");
  }
  if (service.role() == ReplicationRole::kFollower) {
    return Status::FailedPrecondition(
        "a follower cannot participate in two-phase commit");
  }
  if (durability->primary_term() > durability->owned_term()) {
    // Fenced: a newer primary owns the term. A deposed coordinator must not
    // promise or decide — its journal suffix may be truncated at rejoin.
    return Status::FailedPrecondition(
        "deposed: observed term " +
        std::to_string(durability->primary_term()) + " > owned term " +
        std::to_string(durability->owned_term()));
  }
  if (service.read_only()) {
    return Status::Unavailable("service is not accepting writes (" +
                               ServiceHealthName(service.health()) + ")");
  }
  return Status::OK();
}

}  // namespace

Status EditService::Prepare2pc(uint64_t txn_id, uint32_t coordinator_shard,
                               const EditRequest& half) {
  Status writable = Check2pcWritable(*this, durability_);
  if (!writable.ok()) {
    if (health() == ServiceHealth::kFenced ||
        (durability_ != nullptr &&
         durability_->primary_term() > durability_->owned_term())) {
      statistics().Add(Ticker::kReplFencedWrites);
    }
    return writable;
  }
  return WithExclusive([&](OneEditSystem& system) {
    return durability_->LogPrepare(txn_id, coordinator_shard, half,
                                   system.config().method,
                                   &system.statistics());
  });
}

Status EditService::Decide2pc(uint64_t txn_id, bool commit) {
  Status writable = Check2pcWritable(*this, durability_);
  if (!writable.ok()) {
    if (health() == ServiceHealth::kFenced ||
        (durability_ != nullptr &&
         durability_->primary_term() > durability_->owned_term())) {
      statistics().Add(Ticker::kReplFencedWrites);
    }
    return writable;
  }
  return WithExclusive([&](OneEditSystem& system) {
    return durability_->LogTxnDecision(txn_id, commit, system.config().method,
                                       &system.statistics());
  });
}

void EditService::Forget2pc(uint64_t txn_id) {
  if (durability_ == nullptr) return;
  // Pure table maintenance — no journal write, so no lock or health gate:
  // the retained decision simply stops being re-journaled at rotations.
  durability_->ForgetTxn(txn_id);
}

Status EditService::RepairCorruption(
    const durability::ScrubFinding& finding) {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "corruption repair requires a durability manager");
  }
  std::vector<uint16_t> peers;
  {
    std::lock_guard<std::mutex> lock(repl_mutex_);
    peers = options_.replication.repair_peer_ports;
  }
  if (peers.empty() && role() == ReplicationRole::kFollower &&
      options_.replication.primary_port != 0) {
    // A follower's natural repair peer is its primary: their journals are
    // byte-identical, and the primary's main endpoint serves fetches.
    peers.push_back(options_.replication.primary_port);
  }
  const uint64_t term = durability_->primary_term();
  return WithExclusive([&](OneEditSystem& system) -> Status {
    const Status repaired =
        finding.target == durability::ScrubFinding::Target::kWal
            ? RepairWal(finding, peers, term)
            : RepairCheckpoint(peers, term);
    if (repaired.ok()) return repaired;
    // Fallback: the LIVE state is intact — bit-rot hit only the on-disk
    // copy of history it already contains — so sealing it into a fresh
    // checkpoint restores durability end-to-end (and rotates a rotten WAL
    // away / replaces a rotten checkpoint) with zero acknowledged loss,
    // just without the byte-identical journal a peer fetch preserves.
    ONEEDIT_LOG(Warning) << "peer-assisted repair unavailable ("
                         << repaired.ToString()
                         << "); sealing live state into a fresh checkpoint";
    ONEEDIT_RETURN_IF_ERROR(
        durability_->Checkpoint(system, &system.statistics()));
    system.statistics().Add(Ticker::kRepairsCompleted);
    return Status::OK();
  });
}

Status EditService::RepairWal(const durability::ScrubFinding& finding,
                              const std::vector<uint16_t>& peers,
                              uint64_t term) {
  durability::Env* env = durability_->options().env != nullptr
                             ? durability_->options().env
                             : durability::Env::Default();
  ONEEDIT_LOG(Warning) << "WAL repair triggered: " << finding.detail;
  // Re-derive the splice point under the exclusive lock rather than trust
  // the finding's offsets: between detection and this lock the writer may
  // have checkpointed (rotating the rot away entirely) or appended more
  // committed frames past it. The finding is a trigger, not a coordinate.
  durability::EditWal::Cursor cursor(durability_->wal_path(),
                                     /*start_sequence=*/0, env);
  durability::EditWalRecord record;
  uint64_t last_intact = 0;
  uint64_t corrupt_offset = 0;
  bool corrupt_found = false;
  for (;;) {
    const StatusOr<durability::EditWal::Cursor::Poll> poll =
        cursor.Next(&record);
    if (!poll.ok()) {
      if (poll.status().code() != StatusCode::kCorruption) {
        return poll.status();  // transient read error, not rot: try later
      }
      corrupt_found = true;
      corrupt_offset = cursor.offset();
      break;
    }
    if (*poll == durability::EditWal::Cursor::Poll::kRecord) {
      last_intact = record.sequence;
      continue;
    }
    if (*poll == durability::EditWal::Cursor::Poll::kRotated) {
      // Rotation under the exclusive lock is impossible; a pre-lock one
      // means a fresh checkpoint already covers the commit point.
      return Status::OK();
    }
    break;  // kEndOfLog
  }
  // What the on-disk pair (checkpoint + intact WAL prefix) still covers.
  uint64_t covered = last_intact;
  const StatusOr<durability::CheckpointState> peeked =
      durability::PeekCheckpointState(durability_->checkpoint_path(), env);
  if (peeked.ok() && peeked->last_sequence > covered) {
    covered = peeked->last_sequence;
  }
  const uint64_t committed = durability_->committed_sequence();
  if (!corrupt_found) {
    if (covered >= committed) return Status::OK();  // healed meanwhile
    // Clean walk that ends short of the commit point: the final committed
    // frame(s) rotted in place (frame-wise indistinguishable from a torn
    // tail). Splice from the end of the intact data.
    corrupt_offset = cursor.offset();
  }
  const uint64_t from = covered + 1;
  if (committed < from) return Status::OK();

  replication::FetchRangeRequest request;
  request.target = replication::RepairTarget::kWal;
  request.from_sequence = from;
  request.through_sequence = committed;
  request.term = term;
  for (uint16_t port : peers) {
    const StatusOr<replication::RepairReply> reply =
        replication::FetchFromPeer(port, request,
                                   options_.replication.net);
    if (!reply.ok()) {
      ONEEDIT_LOG(Info) << "repair peer 127.0.0.1:" << port
                        << " unavailable: " << reply.status().ToString();
      continue;
    }
    if (reply->complete == 0) continue;  // peer cannot serve the region
    // Validate before splicing: the bytes must decode contiguously from
    // `from` through `committed` — the same invariant the peer's
    // BuildRepairReply promises, re-checked here because the network is
    // not part of the trust boundary.
    std::string_view rest(reply->bytes);
    uint64_t expect = from;
    bool valid = true;
    while (!rest.empty()) {
      durability::EditWalRecord fetched;
      size_t frame_bytes = 0;
      if (durability::EditWal::DecodeFrame(rest, &fetched, &frame_bytes) !=
              durability::EditWal::FrameResult::kRecord ||
          fetched.sequence != expect) {
        valid = false;
        break;
      }
      ++expect;
      rest.remove_prefix(frame_bytes);
    }
    if (!valid || expect <= committed) {
      ONEEDIT_LOG(Warning) << "repair peer 127.0.0.1:" << port
                           << " shipped an invalid region; trying the next";
      continue;
    }
    ONEEDIT_RETURN_IF_ERROR(
        durability_->RepairWalRegion(corrupt_offset, reply->bytes));
    system_->statistics().Add(Ticker::kRepairsCompleted);
    ONEEDIT_LOG(Warning) << "WAL repaired from peer 127.0.0.1:" << port
                         << ": sequences " << from << ".." << committed
                         << " respliced at byte offset " << corrupt_offset;
    return Status::OK();
  }
  return Status::Unavailable(
      "no repair peer could serve WAL sequences " + std::to_string(from) +
      ".." + std::to_string(committed));
}

Status EditService::RepairCheckpoint(const std::vector<uint16_t>& peers,
                                     uint64_t term) {
  durability::Env* env = durability_->options().env != nullptr
                             ? durability_->options().env
                             : durability::Env::Default();
  if (!env->FileExists(durability_->checkpoint_path())) {
    return Status::OK();  // no checkpoint: the WAL alone carries history
  }
  // Re-verify under the lock: a transient read error, a concurrent
  // checkpoint publish, or an earlier repair may have cleared the finding.
  if (durability::VerifyCheckpointIntegrity(durability_->checkpoint_path(),
                                            env)
          .ok()) {
    return Status::OK();
  }
  // A replacement image must chain with the local WAL: recovery loads the
  // image at sequence Q, then replays WAL records with sequence > Q — so
  // the WAL's first record must be at most Q + 1, and nothing this node
  // acknowledged may lie beyond what image + WAL jointly cover.
  uint64_t first_wal = 0;
  {
    durability::EditWal::Cursor cursor(durability_->wal_path(),
                                       /*start_sequence=*/0, env);
    durability::EditWalRecord record;
    const StatusOr<durability::EditWal::Cursor::Poll> poll =
        cursor.Next(&record);
    if (poll.ok() && *poll == durability::EditWal::Cursor::Poll::kRecord) {
      first_wal = record.sequence;
    }
  }
  const uint64_t committed = durability_->committed_sequence();

  replication::FetchRangeRequest request;
  request.target = replication::RepairTarget::kCheckpoint;
  request.term = term;
  for (uint16_t port : peers) {
    const StatusOr<replication::RepairReply> reply =
        replication::FetchFromPeer(port, request,
                                   options_.replication.net);
    if (!reply.ok()) {
      ONEEDIT_LOG(Info) << "repair peer 127.0.0.1:" << port
                        << " unavailable: " << reply.status().ToString();
      continue;
    }
    if (reply->complete == 0) continue;
    // Verify the image locally before it touches disk.
    const StatusOr<durability::CheckpointState> state =
        durability::VerifyCheckpointImage(reply->bytes, "peer checkpoint");
    if (!state.ok()) {
      ONEEDIT_LOG(Warning) << "repair peer 127.0.0.1:" << port
                           << " shipped a corrupt checkpoint image; "
                              "trying the next";
      continue;
    }
    const uint64_t q = state->last_sequence;
    const bool chains = first_wal != 0
                            ? (q + 1 >= first_wal && q <= committed)
                            : (q == committed);
    if (!chains) {
      ONEEDIT_LOG(Info) << "repair peer 127.0.0.1:" << port
                        << " checkpoint at sequence " << q
                        << " does not chain with the local WAL (first="
                        << first_wal << ", committed=" << committed << ")";
      continue;
    }
    ONEEDIT_RETURN_IF_ERROR(
        durability_->ReplaceCheckpointBytes(reply->bytes));
    system_->statistics().Add(Ticker::kRepairsCompleted);
    ONEEDIT_LOG(Warning) << "checkpoint repaired from peer 127.0.0.1:"
                         << port << ": verified image at sequence " << q
                         << " installed";
    return Status::OK();
  }
  return Status::Unavailable(
      "no repair peer could serve a chaining checkpoint image");
}

void EditService::StartReplication() {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  switch (role()) {
    case ReplicationRole::kStandalone:
      return;
    case ReplicationRole::kPrimary: {
      replication::ReplicationServerOptions server_options;
      server_options.port = options_.replication.listen_port;
      server_options.net = options_.replication.net;
      server_options.on_deposed = [this](uint64_t term) { OnDeposed(term); };
      StatusOr<std::unique_ptr<replication::ReplicationServer>> server =
          replication::ReplicationServer::Start(
              durability_, &system_->statistics(), server_options);
      if (!server.ok()) {
        // Serving writes matters more than forming the group; followers
        // will fail to connect and retry, which is visible and recoverable.
        ONEEDIT_LOG(Warning) << "replication listener failed to start: "
                             << server.status().ToString();
        return;
      }
      repl_server_ = std::move(*server);
      ONEEDIT_LOG(Info) << "replication listener on 127.0.0.1:"
                        << repl_server_->port();
      return;
    }
    case ReplicationRole::kFollower: {
      replication::FollowerOptions follower_options;
      follower_options.primary_port = options_.replication.primary_port;
      follower_options.poll_interval = options_.replication.poll_interval;
      follower_options.net = options_.replication.net;
      replication::FollowerHooks hooks;
      hooks.apply_batch = [this](const replication::ShippedBatch& batch) {
        return ApplyReplicatedBatch(batch);
      };
      hooks.install_snapshot = [this](uint64_t checkpoint_sequence,
                                      const std::string& bytes) {
        return InstallReplicatedSnapshot(checkpoint_sequence, bytes);
      };
      hooks.applied_sequence = [this] { return applied_sequence(); };
      hooks.current_term = [this] { return durability_->primary_term(); };
      hooks.applied_term = [this] { return durability_->applied_term(); };
      hooks.adopt_term = [this](uint64_t term) {
        durability_->AdoptTerm(term);
      };
      hooks.on_divergence = [this](uint64_t checkpoint_sequence) {
        system_->statistics().Add(Ticker::kReplDivergenceTruncations);
        ONEEDIT_LOG(Warning)
            << "divergence reconciled: WAL suffix journaled under a deposed "
               "term truncated and resynced from the primary's checkpoint at "
            << checkpoint_sequence;
      };
      follower_ = replication::Follower::Start(
          follower_options, std::move(hooks), &system_->statistics());
      if (options_.replication.enable_repair_listener &&
          repair_server_ == nullptr) {
        // A second shipping endpoint so the PRIMARY can fetch clean journal
        // bytes back from this replica when its own copy rots. It serves
        // kFetchRange from this follower's (byte-identical) WAL and
        // checkpoint; fetch handling never deposes, so trailing the
        // requester's term is harmless.
        replication::ReplicationServerOptions repair_options;
        repair_options.port = options_.replication.repair_listen_port;
        repair_options.net = options_.replication.net;
        StatusOr<std::unique_ptr<replication::ReplicationServer>> server =
            replication::ReplicationServer::Start(
                durability_, &system_->statistics(), repair_options);
        if (!server.ok()) {
          // Repair is an extra safety net; tailing works without it.
          ONEEDIT_LOG(Warning) << "repair listener failed to start: "
                               << server.status().ToString();
          return;
        }
        repair_server_ = std::move(*server);
        ONEEDIT_LOG(Info) << "repair listener on 127.0.0.1:"
                          << repair_server_->port();
      }
      return;
    }
  }
}

Status EditService::ApplyReplicatedBatch(
    const replication::ShippedBatch& batch) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<durability::EditWalRecord> records;
  std::string_view rest(batch.frames);
  while (!rest.empty()) {
    durability::EditWalRecord record;
    size_t frame_bytes = 0;
    if (durability::EditWal::DecodeFrame(rest, &record, &frame_bytes) !=
        durability::EditWal::FrameResult::kRecord) {
      return Status::Corruption(
          "shipped batch contains an undecodable frame at relative offset " +
          std::to_string(batch.frames.size() - rest.size()));
    }
    records.push_back(std::move(record));
    rest.remove_prefix(frame_bytes);
  }
  if (records.empty()) {
    return Status::InvalidArgument("shipped batch carries no records");
  }
  if (records.front().sequence != applied_sequence_.load() + 1) {
    return Status::Corruption(
        "shipped batch starts at sequence " +
        std::to_string(records.front().sequence) + " but this replica has "
        "applied through " + std::to_string(applied_sequence_.load()));
  }

  Statistics& stats = system_->statistics();
  // Same discipline as the primary's writer: journal + fsync the shipped
  // frames BEFORE applying, so the sequence this replica acks is always
  // recoverable — and byte-identical to the primary's log.
  ONEEDIT_RETURN_IF_ERROR(durability_->AppendReplicated(
      batch.frames, batch.last_sequence, records.back().term, records.size(),
      &stats));

  // The primary's quarantine verdicts are authoritative: a verdict record
  // is journaled into the SAME writer batch as the edit it condemns, so the
  // shipped batch carries both and replay can drop the poison up front —
  // exactly what crash recovery's two-pass replay does. Re-running local
  // validation here instead would let a replica reach a DIFFERENT verdict
  // than the primary (validation probes the live model, and a replica's
  // model history — e.g. one rebuilt by divergence reconciliation — is not
  // bit-equal), silently forking state under identical journals.
  std::unordered_set<uint64_t> condemned;
  for (const durability::EditWalRecord& record : records) {
    if (record.quarantine) condemned.insert(record.quarantined_sequence);
  }
  std::vector<EditRequest> requests;
  requests.reserve(records.size());
  for (const durability::EditWalRecord& record : records) {
    if (record.quarantine || condemned.count(record.sequence) > 0) continue;
    // 2PC markers (prepares / decisions the primary re-journaled or logged
    // live) are journal-only state: AppendReplicated above already folded
    // them into the txn tables; they are never applied.
    if (record.txn_marker != durability::TxnMarker::kNone) continue;
    requests.push_back(record.request);
  }
  {
    std::unique_lock<std::mutex> gate(writer_gate_);
    std::unique_lock<std::shared_mutex> write_lock(rw_mutex_);
    gate.unlock();
    if (!requests.empty()) {
      // Per-slot failures reproduce the original run (guard rejections,
      // no-ops) and must not abort the tail.
      (void)system_->EditBatch(requests);
    }
    // Shipped-batch boundary: publish while still holding the lock, BEFORE
    // advancing the token — a reader that sees the new applied_sequence()
    // (or an AskAtLeast/GetSnapshot waiter it wakes) must pin a state that
    // already contains the batch.
    PublishSnapshot(batch.last_sequence);
    applied_sequence_.store(batch.last_sequence, std::memory_order_release);
  }
  obs::CostProfiler& profiler = obs::CostProfiler::Global();
  if (profiler.enabled() && !requests.empty()) {
    // Follower-side edit churn: the shipped batch's apply micros, shared
    // equally across its requests, mirror the primary's accounting.
    const uint64_t share =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()) /
        requests.size();
    for (const EditRequest& request : requests) {
      if (request.op == EditRequest::Op::kUtterance) continue;
      profiler.RecordEdit(request.triple.subject, request.triple.relation,
                          request.triple.object, share);
    }
  }
  stats.Record(Histogram::kReplApplyMicros,
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count()));
  return Status::OK();
}

Status EditService::InstallReplicatedSnapshot(uint64_t checkpoint_sequence,
                                              const std::string& bytes) {
  std::unique_lock<std::mutex> gate(writer_gate_);
  std::unique_lock<std::shared_mutex> write_lock(rw_mutex_);
  gate.unlock();
  ONEEDIT_ASSIGN_OR_RETURN(
      const uint64_t installed,
      durability_->InstallSnapshotBytes(bytes, system_.get(),
                                        &system_->statistics()));
  if (installed != checkpoint_sequence) {
    // The primary checkpointed between deciding to ship and reading the
    // file; the bytes are newer than advertised, which is fine — trust
    // what was actually installed.
    ONEEDIT_LOG(Info) << "installed snapshot at sequence " << installed
                      << " (advertised " << checkpoint_sequence << ")";
  }
  PublishSnapshot(installed);
  applied_sequence_.store(installed, std::memory_order_release);
  return Status::OK();
}

StatusOr<Decode> EditService::AskAtLeast(const std::string& subject,
                                         const std::string& relation,
                                         uint64_t min_sequence) const {
  ReadOptions options;
  options.min_sequence = min_sequence;
  StatusOr<Snapshot> snapshot = GetSnapshot(options);
  if (!snapshot.ok()) return snapshot.status();
  return snapshot->Ask(subject, relation);
}

Status EditService::Promote() {
  if (role() != ReplicationRole::kFollower) {
    return Status::FailedPrecondition(
        "only a follower can be promoted (role is " +
        ReplicationRoleName(role()) + ")");
  }
  // 1. Stop tailing: joins the tail thread, so no shipped batch is
  //    mid-journal or mid-apply past this point.
  {
    std::lock_guard<std::mutex> lock(repl_mutex_);
    if (follower_ != nullptr) follower_->Stop();
    if (repair_server_ != nullptr) {
      // The promoted primary's main listener serves fetches; the
      // follower-role repair endpoint is redundant from here.
      repair_server_->Stop();
      repair_server_.reset();
    }
  }
  // 2. Win a new term. Everything this primary journals from here is
  //    stamped with it; the old primary's unreplicated suffix (if any)
  //    stays marked with the lower term it was written under.
  const uint64_t term = durability_->BumpTerm();
  // 3. Seal the WAL: publish a checkpoint under the exclusive lock. The
  //    replica's last applied state becomes its own durable authority —
  //    with the won term persisted in the checkpoint header — and the log
  //    rotates clean for the writes this new primary will journal.
  const Status sealed = WithExclusive([this](OneEditSystem& system) {
    return durability_->Checkpoint(system, &system.statistics());
  });
  if (!sealed.ok()) {
    return Status::Internal("promotion failed to seal the WAL: " +
                            sealed.ToString());
  }
  // 4. Accept writes.
  role_.store(ReplicationRole::kPrimary, std::memory_order_release);
  ONEEDIT_LOG(Warning) << "promoted to primary: term " << term
                       << ", sequence " << applied_sequence();
  // 5. Let surviving followers re-attach (best-effort).
  StartReplication();
  // 6. Fence the old primary: keep announcing the won term at its port
  //    until something over there acknowledges it. Without this, a deposed
  //    primary on the far side of a partition would keep acking writes
  //    until a follower happened to poll it with the new term.
  if (options_.replication.primary_port != 0) {
    StopFencer();
    std::lock_guard<std::mutex> lock(fencer_mutex_);
    fencer_stop_.store(false, std::memory_order_release);
    fencer_ = std::thread(&EditService::FencerLoop, this,
                          options_.replication.primary_port, term);
  }
  return Status::OK();
}

Status EditService::RejoinAsFollower(uint16_t primary_port) {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "RejoinAsFollower requires a durability manager");
  }
  StopFencer();
  // Shed the write path first: new Submits bounce off the follower role
  // check, and Drain() flushes whatever the writer already admitted.
  role_.store(ReplicationRole::kFollower, std::memory_order_release);
  Drain();
  {
    std::lock_guard<std::mutex> lock(repl_mutex_);
    if (follower_ != nullptr) {
      follower_->Stop();
      follower_.reset();
    }
    if (repl_server_ != nullptr) {
      repl_server_->Stop();
      repl_server_.reset();
    }
    if (repair_server_ != nullptr) {
      repair_server_->Stop();
      repair_server_.reset();
    }
  }
  options_.replication.primary_port = primary_port;
  if (health() == ServiceHealth::kFenced) {
    // The fence's reason to exist — a competing writable history — is
    // resolved by tailing the winner: any deposed-term suffix is truncated
    // and resynced by its divergence snapshot.
    TransitionHealth(ServiceHealth::kHealthy,
                     "rejoining as follower of the term-" +
                         std::to_string(durability_->primary_term()) +
                         " primary on port " + std::to_string(primary_port));
  }
  ONEEDIT_LOG(Warning) << "rejoining as follower of 127.0.0.1:"
                       << primary_port << " (observed term "
                       << durability_->primary_term() << ")";
  StartReplication();
  return Status::OK();
}

uint64_t EditService::primary_term() const {
  return durability_ != nullptr ? durability_->primary_term() : 0;
}

void EditService::OnDeposed(uint64_t term) {
  TransitionHealth(ServiceHealth::kFenced,
                   "deposed: observed primary term " + std::to_string(term) +
                       " above owned term " +
                       std::to_string(durability_ != nullptr
                                          ? durability_->owned_term()
                                          : 0));
  // Persist the adopted term so a crash-restart boots fenced instead of
  // writable. Best-effort: the fence itself is already in force.
  if (durability_ != nullptr) {
    const Status persisted = WithExclusive([this](OneEditSystem& system) {
      return durability_->Checkpoint(system, &system.statistics());
    });
    if (!persisted.ok()) {
      ONEEDIT_LOG(Warning) << "could not persist the deposing term: "
                           << persisted.ToString();
    }
  }
}

void EditService::FencerLoop(uint16_t old_primary_port, uint64_t term) {
  net::Net* net = options_.replication.net != nullptr
                      ? options_.replication.net
                      : net::Net::Default();
  std::chrono::milliseconds backoff(20);
  while (!fencer_stop_.load(std::memory_order_acquire)) {
    StatusOr<int> fd = net->Connect(old_primary_port);
    if (fd.ok()) {
      net->IoTimeouts(*fd, /*seconds=*/2);
      replication::PollRequest poll;
      poll.term = term;
      poll.applied_term = term;
      // No data is wanted: the poll exists to carry the term stamp. The
      // old primary deposes itself before building any reply.
      const Status sent =
          replication::SendFrame(*fd, replication::EncodePoll(poll), net);
      StatusOr<replication::Message> reply =
          sent.ok() ? replication::RecvMessage(*fd, net)
                    : StatusOr<replication::Message>(sent);
      ::close(*fd);
      if (reply.ok()) {
        // Any decoded reply proves the peer processed the stamped poll —
        // a kReject{kDeposed} is the expected one. Mission accomplished.
        ONEEDIT_LOG(Info) << "fencer: old primary on port "
                          << old_primary_port << " observed term " << term;
        return;
      }
    }
    std::unique_lock<std::mutex> lock(fencer_wait_mutex_);
    fencer_wake_.wait_for(lock, backoff, [this] {
      return fencer_stop_.load(std::memory_order_acquire);
    });
    backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
  }
}

void EditService::StopFencer() {
  std::lock_guard<std::mutex> lock(fencer_mutex_);
  fencer_stop_.store(true, std::memory_order_release);
  fencer_wake_.notify_all();
  if (fencer_.joinable()) fencer_.join();
}

const replication::ReplicationServer* EditService::replication_server()
    const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return repl_server_.get();
}

const replication::Follower* EditService::follower() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return follower_.get();
}

const replication::ReplicationServer* EditService::repair_server() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return repair_server_.get();
}

void EditService::SetRepairPeers(const std::vector<uint16_t>& ports) {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  options_.replication.repair_peer_ports = ports;
}

size_t EditService::followers_connected() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return repl_server_ != nullptr ? repl_server_->followers_connected() : 0;
}

uint64_t EditService::min_follower_applied() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return repl_server_ != nullptr ? repl_server_->min_follower_applied() : 0;
}

uint64_t EditService::replication_lag_records() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return follower_ != nullptr ? follower_->lag_records() : 0;
}

uint64_t EditService::replication_lag_batches() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return follower_ != nullptr ? follower_->lag_batches() : 0;
}

double EditService::replication_lag_seconds() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return follower_ != nullptr ? follower_->lag_seconds() : 0.0;
}

replication::FollowerState EditService::follower_state() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return follower_ != nullptr ? follower_->state()
                              : replication::FollowerState::kStopped;
}

void EditService::RejectDegraded(std::vector<Pending>* batch) {
  if (health() == ServiceHealth::kFenced) {
    // Requests that were already queued when the fence dropped.
    system_->statistics().Add(Ticker::kReplFencedWrites, batch->size());
    const EditResult fenced = FencedRejection(
        durability_ != nullptr ? durability_->primary_term() : 0,
        durability_ != nullptr ? durability_->owned_term() : 0);
    for (Pending& pending : *batch) {
      pending.promise.set_value(fenced);
    }
    return;
  }
  const std::string why = recovery_status_.ok()
                              ? std::string("write-ahead logging is unavailable")
                              : "startup recovery failed: " +
                                    recovery_status_.ToString();
  for (Pending& pending : *batch) {
    pending.promise.set_value(DegradedRejection(why));
  }
}

size_t EditService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::vector<EditService::Pending> EditService::NextBatch() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  if (!options_.coalesce) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    return batch;
  }

  // Entities touched by admitted requests, and by skipped ones: overlapping
  // either keeps a request queued so per-slot order is preserved.
  std::unordered_set<std::string> admitted;
  std::unordered_set<std::string> blocked;
  std::vector<std::string> footprint;
  auto it = queue_.begin();
  while (it != queue_.end() && batch.size() < options_.max_batch_size) {
    const EditRequest& request = it->request;
    if (request.op == EditRequest::Op::kUtterance) {
      // Unknown footprint until interpreted: run alone, bar what follows.
      if (batch.empty()) {
        batch.push_back(std::move(*it));
        queue_.erase(it);
      }
      break;
    }
    if (Overlaps(request, admitted) || Overlaps(request, blocked)) {
      footprint.clear();
      AppendFootprint(request, &footprint);
      blocked.insert(footprint.begin(), footprint.end());
      ++it;
      continue;
    }
    footprint.clear();
    AppendFootprint(request, &footprint);
    admitted.insert(footprint.begin(), footprint.end());
    batch.push_back(std::move(*it));
    it = queue_.erase(it);
  }
  return batch;
}

void EditService::WriterLoop() {
  const bool can_heal =
      durability_ != nullptr && options_.self_heal.auto_heal;
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    bool probe_heal = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      if (can_heal && wal_degraded_.load(std::memory_order_acquire)) {
        // WAL-degraded: wake on the heal cadence even with an empty queue.
        // A timeout (nothing queued, not stopping) means the probe is due;
        // queued leftovers are still popped below so Drain() terminates.
        const bool woke = queue_not_empty_.wait_for(
            lock, options_.self_heal.heal_probe_interval,
            [this] { return stopping_ || !queue_.empty(); });
        probe_heal = !woke;
      } else {
        queue_not_empty_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
      }
      if (stopping_) return;  // Stop() fails whatever is left.
      if (!probe_heal) {
        ExpireDeadlinesLocked(&expired);
        batch = NextBatch();
        writer_busy_ = !batch.empty();
      }
    }
    queue_not_full_.notify_all();
    Statistics& stats = system_->statistics();
    for (Pending& pending : expired) {
      stats.Add(Ticker::kDeadlineExpired);
      // Root span closes before the promise resolves, so a caller who
      // drains the recorder right after .get() sees the whole trace.
      FinishTrace(pending.request.trace);
      pending.promise.set_value(Status::DeadlineExceeded(
          "deadline expired while the request was queued"));
    }
    if (probe_heal) {
      TryHeal();
      idle_.notify_all();
      continue;
    }
    if (batch.empty()) {
      idle_.notify_all();
      continue;
    }

    std::vector<EditRequest> requests;
    requests.reserve(batch.size());
    for (const Pending& pending : batch) requests.push_back(pending.request);

    // The queue wait ends here for every admitted request: one span per
    // request plus the aggregate histogram (queue push -> writer dequeue).
    obs::TraceRecorder& tracer = obs::TraceRecorder::Global();
    const uint64_t dequeued_ns = obs::TraceNowNanos();
    for (const Pending& pending : batch) {
      if (pending.admitted_ns != 0 && dequeued_ns > pending.admitted_ns) {
        if (pending.request.trace.active()) {
          tracer.Record(pending.request.trace, "queue-wait",
                        pending.admitted_ns, dequeued_ns);
        }
        stats.Record(Histogram::kServingQueueWaitMicros,
                     (dequeued_ns - pending.admitted_ns) / 1000);
      }
    }

    bool degraded = read_only();
    bool results_valid = false;
    std::vector<StatusOr<EditResult>> results;
    if (!degraded) {
      std::unique_lock<std::mutex> gate(writer_gate_);
      std::unique_lock<std::shared_mutex> write_lock(rw_mutex_);
      gate.unlock();
      // Batch-level spans (wal-append, fsync, guard, locate, apply,
      // reliability-probe, canary, bisect, rollback) attach to the batch
      // leader's trace: the work is genuinely shared, and one deep trace
      // beats N copies of the same spans.
      obs::TraceScope batch_scope(batch.front().request.trace);
      uint64_t first_sequence = 0;
      if (durability_ != nullptr) {
        // Durability protocol: the batch must be journaled and fsynced
        // BEFORE it is applied — an acknowledged edit is always on disk.
        // Transient I/O failures get a bounded retry before we give up.
        const Status logged = LogBatchWithRetry(requests, &stats);
        if (!logged.ok()) {
          wal_degraded_.store(true, std::memory_order_release);
          // ENOSPC skips the retry ladder entirely: ms-scale backoff cannot
          // free a full disk, so the message must not claim retries ran.
          TransitionHealth(ServiceHealth::kReadOnlyDegraded,
                           logged.IsResourceExhausted()
                               ? "edit WAL commit shed without retry (disk "
                                 "full): " + logged.ToString()
                               : "edit WAL commit failed after " +
                                     std::to_string(options_.self_heal
                                                        .wal_retry_limit) +
                                     " retries: " + logged.ToString());
          degraded = true;
        } else {
          // LogBatch assigned this batch the sequences
          // [next_sequence - size, next_sequence): the first one seeds
          // validation so recovery replay re-derives the same verdict.
          first_sequence = durability_->next_sequence() - requests.size();
        }
      } else {
        first_sequence = ++nodur_seed_;
      }
      if (!degraded) {
        const uint64_t apply_start_ns = obs::TraceNowNanos();
        SelfHealer healer(system_.get(), options_.self_heal);
        HealedBatch healed = healer.ApplyValidated(requests, first_sequence);
        results = std::move(healed.results);
        results_valid = true;
        obs::CostProfiler& profiler = obs::CostProfiler::Global();
        if (profiler.enabled()) {
          // Edit churn: each request is charged an equal share of the
          // validated-apply micros against its subject, object and
          // relation. Utterances are skipped (their footprint is only
          // known post-interpretation).
          const uint64_t share = (obs::TraceNowNanos() - apply_start_ns) /
                                 1000 / requests.size();
          for (const EditRequest& request : requests) {
            if (request.op == EditRequest::Op::kUtterance) continue;
            profiler.RecordEdit(request.triple.subject,
                                request.triple.relation,
                                request.triple.object, share);
          }
        }
        if (durability_ != nullptr && !healed.quarantined.empty()) {
          // Journal the verdicts so replay skips the poison up front
          // instead of re-running the whole heal loop.
          Status journaled = Status::OK();
          for (size_t index : healed.quarantined) {
            journaled = durability_->LogQuarantine(
                first_sequence + index, healed.quarantine_reason,
                system_->config().method, &stats);
            if (!journaled.ok()) break;
          }
          if (!journaled.ok()) {
            // Not acknowledged-edit loss: the verdict is re-derivable at
            // recovery (validation is deterministic). Prefer making the
            // post-quarantine state durable wholesale; if even that fails
            // the env is gone — degrade for FUTURE submissions, but still
            // deliver this batch's results (their records are on disk).
            const Status fallback =
                durability_->Checkpoint(*system_, &stats);
            if (!fallback.ok()) {
              wal_degraded_.store(true, std::memory_order_release);
              TransitionHealth(
                  ServiceHealth::kReadOnlyDegraded,
                  "quarantine verdict journal and fallback checkpoint "
                  "both failed: " +
                      fallback.ToString());
              degraded = true;
            }
          }
        }
        if (durability_ != nullptr && !degraded) {
          // A checkpoint failure is survivable — the WAL still covers
          // every committed edit — so it does not degrade the service.
          const Status cadence =
              durability_->OnBatchApplied(*system_, requests.size(), &stats);
          if (!cadence.ok()) {
            ONEEDIT_LOG(Warning)
                << "checkpoint failed (WAL still intact): "
                << cadence.ToString();
          }
        }
        // The batch (and any quarantine verdicts) is applied and durable:
        // publish the new read state, then advance the commit point, all
        // before the exclusive lock drops — every promise resolved below
        // is read-your-writes visible to snapshot readers.
        const uint64_t commit = durability_ != nullptr
                                    ? durability_->committed_sequence()
                                    : nodur_seed_;
        PublishSnapshot(commit);
        applied_sequence_.store(commit, std::memory_order_release);
      }
    }
    if (results_valid && options_.replication.ack_replicas > 0) {
      // Quorum ack: hold the client promises until enough followers have
      // journaled + applied this batch, so an acknowledged edit survives
      // primary loss. The exclusive lock is already released — followers
      // replicate from the on-disk WAL, and readers proceed meanwhile.
      replication::ReplicationServer* server = nullptr;
      {
        std::lock_guard<std::mutex> lock(repl_mutex_);
        server = repl_server_.get();
      }
      // No server (bind failed) can never reach quorum: same as a timeout.
      replication::AckWait wait =
          server != nullptr
              ? server->WaitForAcks(applied_sequence_.load(),
                                    options_.replication.ack_replicas,
                                    options_.replication.ack_timeout)
              : replication::AckWait::kTimeout;
      if (wait == replication::AckWait::kTimeout) {
        if (options_.replication.ack_policy == AckPolicy::kFailWrite) {
          // The promise the client asked for (survives primary loss) was
          // not met; say so instead of acking a write a failover can lose.
          // The edits ARE journaled and applied locally — exactly the
          // unacknowledged suffix divergence reconciliation truncates if
          // this node is deposed while partitioned.
          stats.Add(Ticker::kReplQuorumFailures);
          ONEEDIT_LOG(Warning)
              << "replication ack quorum ("
              << options_.replication.ack_replicas
              << " replicas) not reached within "
              << options_.replication.ack_timeout.count()
              << "ms for sequence " << applied_sequence_.load()
              << "; failing the batch's writes (AckPolicy::kFailWrite)";
          for (StatusOr<EditResult>& result : results) {
            if (!result.ok() || !result->applied()) continue;
            EditResult unacked;
            unacked.kind = EditResult::Kind::kRejected;
            unacked.message =
                "replication quorum not reached: applied locally but not "
                "acknowledged by " +
                std::to_string(options_.replication.ack_replicas) +
                " replica(s) within " +
                std::to_string(options_.replication.ack_timeout.count()) +
                "ms";
            *result = std::move(unacked);
          }
        } else {
          stats.Add(Ticker::kReplAckTimeouts);
          ONEEDIT_LOG(Warning)
              << "replication ack quorum ("
              << options_.replication.ack_replicas
              << " replicas) not reached within "
              << options_.replication.ack_timeout.count()
              << "ms for sequence " << applied_sequence_.load()
              << "; acknowledging on local durability alone "
                 "(AckPolicy::kAckAnywayWarn)";
        }
      }
      // kStopped: shutdown raced the wait — resolve with the local results
      // (the records are durable here); no verdict on the quorum either way.
    }
    if (degraded && !results_valid) {
      stats.Add(Ticker::kDegradedRejects, batch.size());
      for (const Pending& pending : batch) {
        FinishTrace(pending.request.trace);
      }
      RejectDegraded(&batch);
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        writer_busy_ = false;
      }
      idle_.notify_all();
      continue;
    }
    stats.Add(Ticker::kServingBatches);
    stats.Record(Histogram::kServingBatchSize, batch.size());
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      stats.Record(
          Histogram::kServingLatencyMicros,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - batch[i].enqueued)
                  .count()));
      FinishTrace(batch[i].request.trace);
      batch[i].promise.set_value(std::move(results[i]));
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      writer_busy_ = false;
    }
    idle_.notify_all();
  }
}

void EditService::ExportMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  Statistics* stats = &system_->statistics();

  for (size_t i = 0; i < static_cast<size_t>(Ticker::kTickerCount); ++i) {
    const Ticker ticker = static_cast<Ticker>(i);
    registry->AddCounter(TickerName(ticker),
                         "OneEdit ticker " + TickerName(ticker),
                         [stats, ticker] { return stats->Get(ticker); });
  }
  for (size_t i = 0; i < static_cast<size_t>(Histogram::kHistogramCount);
       ++i) {
    const Histogram histogram = static_cast<Histogram>(i);
    registry->AddHistogram(
        HistogramName(histogram),
        "OneEdit histogram " + HistogramName(histogram),
        [stats, histogram] {
          const HistogramSnapshot snapshot = stats->GetHistogram(histogram);
          obs::HistogramExposition out;
          out.count = snapshot.count;
          out.sum = snapshot.sum;
          out.max = snapshot.max;
          out.p50 = snapshot.P50();
          out.p95 = snapshot.P95();
          out.p99 = snapshot.P99();
          uint64_t cumulative = 0;
          for (size_t b = 0; b < kHistogramBucketCount; ++b) {
            if (snapshot.buckets[b] == 0) continue;
            cumulative += snapshot.buckets[b];
            out.buckets.emplace_back(HistogramBucketUpperBound(b),
                                     cumulative);
          }
          return out;
        });
  }

  registry->AddGauge("queue_depth", "Requests waiting in the edit queue",
                     [this] { return static_cast<double>(queue_depth()); });
  registry->AddGauge(
      "queue_capacity", "Configured edit queue capacity",
      [this] { return static_cast<double>(options_.queue_capacity); });
  registry->AddGauge(
      "max_batch_size", "Configured writer coalescing limit",
      [this] { return static_cast<double>(options_.max_batch_size); });
  registry->AddGauge("read_only",
                     "1 while the service rejects writes (degraded/probing)",
                     [this] { return read_only() ? 1.0 : 0.0; });
  registry->AddLabeledGauge(
      "service_health",
      "One-hot write-path health state (docs/serving.md state machine)",
      [this] {
        const ServiceHealth now = health();
        std::vector<std::pair<obs::MetricLabel, double>> states;
        for (ServiceHealth state :
             {ServiceHealth::kHealthy, ServiceHealth::kReadOnlyDegraded,
              ServiceHealth::kHalfOpenProbing, ServiceHealth::kFenced}) {
          states.push_back({obs::MetricLabel{"state",
                                             ServiceHealthName(state)},
                            state == now ? 1.0 : 0.0});
        }
        return states;
      });

  if (durability_ != nullptr) {
    durability::DurabilityManager* durability = durability_;
    registry->AddGauge(
        "wal_next_sequence",
        "Sequence number the next journaled edit will receive",
        [durability] {
          return static_cast<double>(durability->next_sequence());
        });
    registry->AddGauge(
        "edits_since_checkpoint",
        "Committed edits the WAL tail holds beyond the last checkpoint",
        [durability] {
          return static_cast<double>(durability->edits_since_checkpoint());
        });
    registry->AddGauge(
        "checkpoint_interval",
        "Checkpoint cadence in committed edits (0 = manual only)",
        [durability] {
          return static_cast<double>(durability->options().checkpoint_interval);
        });
    registry->AddGauge(
        "disk_free_bytes",
        "Free bytes on the filesystem holding the durability dir "
        "(-1 = unmeasurable)",
        [durability] {
          durability::Env* env = durability->options().env != nullptr
                                     ? durability->options().env
                                     : durability::Env::Default();
          const StatusOr<uint64_t> free =
              env->FreeDiskSpace(durability->options().dir);
          return free.ok() ? static_cast<double>(*free) : -1.0;
        });
    registry->AddGauge(
        "disk_min_free_bytes",
        "Configured free-space budget below which writes shed "
        "(0 = preflight disabled)",
        [durability] {
          return static_cast<double>(durability->options().min_free_bytes);
        });
  }

  // Replication surface (docs/replication.md): role and lag are exported
  // unconditionally — a standalone service reports role{standalone}=1 and
  // zero lag, so dashboards and the CI scrape can assert the section exists
  // regardless of topology.
  registry->AddLabeledGauge(
      "replication_role", "One-hot replication role of this instance",
      [this] {
        const ReplicationRole now = role();
        std::vector<std::pair<obs::MetricLabel, double>> roles;
        for (ReplicationRole candidate :
             {ReplicationRole::kStandalone, ReplicationRole::kPrimary,
              ReplicationRole::kFollower}) {
          roles.push_back({obs::MetricLabel{"role",
                                            ReplicationRoleName(candidate)},
                           candidate == now ? 1.0 : 0.0});
        }
        return roles;
      });
  registry->AddGauge(
      "replication_applied_sequence",
      "Highest WAL sequence whose effects this instance serves",
      [this] { return static_cast<double>(applied_sequence()); });
  registry->AddGauge(
      "repl_term",
      "Highest primary term this instance has observed (0 = pre-failover)",
      [this] { return static_cast<double>(primary_term()); });
  registry->AddGauge(
      "replication_lag_records",
      "Records committed on the primary but not yet applied here",
      [this] { return static_cast<double>(replication_lag_records()); });
  registry->AddGauge(
      "replication_lag_batches",
      "Shipped or known-pending batches not yet applied (0 = caught up)",
      [this] { return static_cast<double>(replication_lag_batches()); });
  registry->AddGauge(
      "replication_lag_seconds",
      "Age of the oldest known-committed-but-unapplied sequence",
      [this] { return replication_lag_seconds(); });
  registry->AddGauge(
      "replication_followers_connected",
      "Followers currently attached to this primary's shipping endpoint",
      [this] { return static_cast<double>(followers_connected()); });
  registry->AddGauge(
      "replication_min_follower_applied",
      "Lowest acked sequence across connected followers (0 = none)",
      [this] { return static_cast<double>(min_follower_applied()); });
  registry->AddLabeledGauge(
      "replication_follower_state",
      "One-hot follower tail-loop state (followers only; stopped otherwise)",
      [this] {
        const replication::FollowerState now = follower_state();
        std::vector<std::pair<obs::MetricLabel, double>> states;
        for (replication::FollowerState candidate :
             {replication::FollowerState::kConnecting,
              replication::FollowerState::kInstallingSnapshot,
              replication::FollowerState::kTailing,
              replication::FollowerState::kCaughtUp,
              replication::FollowerState::kStopped}) {
          states.push_back(
              {obs::MetricLabel{"state",
                                replication::FollowerStateName(candidate)},
               candidate == now ? 1.0 : 0.0});
        }
        return states;
      });

  // Snapshot publication surface (docs/serving.md): epoch lag measures how
  // far the published read state trails the commit point (0 in steady
  // state — the writer publishes before resolving promises); reader-held
  // states count retired epochs kept alive solely by outstanding handles.
  registry->AddGauge(
      "snapshot_epoch", "Publication ordinal of the current read state",
      [this] { return static_cast<double>(hub_.epoch()); });
  registry->AddGauge(
      "snapshot_sequence",
      "WAL sequence the published read state serves through",
      [this] { return static_cast<double>(hub_.sequence()); });
  registry->AddGauge(
      "snapshot_epoch_lag_records",
      "Records applied at the commit point but not yet published",
      [this] {
        const uint64_t applied = applied_sequence();
        const uint64_t published = hub_.sequence();
        return static_cast<double>(applied > published ? applied - published
                                                       : 0);
      });
  registry->AddGauge(
      "snapshot_states_alive", "ReadState objects not yet freed",
      [this] { return static_cast<double>(hub_.states_alive()); });
  registry->AddGauge(
      "snapshot_states_retained",
      "States held in the time-travel retention window",
      [this] { return static_cast<double>(hub_.states_retained()); });
  registry->AddGauge(
      "snapshot_reader_held_states",
      "Retired states kept alive solely by pinned reader handles",
      [this] { return static_cast<double>(hub_.reader_held_states()); });

  // Graph-cost profiler surface (docs/observability.md): aggregate gauges
  // plus the top-K total-cost rankings as labeled families. Exported
  // unconditionally (the profiler is process-wide): with profiling off the
  // rankings are empty and profiler_enabled reads 0, so dashboards and the
  // CI scrape can assert the families exist regardless of configuration.
  obs::CostProfiler* profiler = &obs::CostProfiler::Global();
  registry->AddGauge("profiler_enabled",
                     "1 while the process-wide cost profiler is recording",
                     [profiler] { return profiler->enabled() ? 1.0 : 0.0; });
  registry->AddGauge(
      "profiler_entities_tracked",
      "Distinct entities seen by the last profiler aggregation",
      [profiler] {
        // Interval-gated refresh keeps this count consistent with the
        // labeled top-K families in the same scrape (export order would
        // otherwise sample it one aggregation behind).
        profiler->RefreshIfStale();
        return static_cast<double>(profiler->entities_tracked());
      });
  registry->AddGauge(
      "profiler_relations_tracked",
      "Distinct relations seen by the last profiler aggregation",
      [profiler] {
        profiler->RefreshIfStale();
        return static_cast<double>(profiler->relations_tracked());
      });
  registry->AddCounter(
      "profiler_dropped",
      "Profiler ticks lost because a counter table shard was full",
      [profiler] { return profiler->dropped(); });
  registry->AddCounter("profiler_aggregations",
                       "Profiler aggregation cycles completed",
                       [profiler] { return profiler->aggregations(); });
  registry->AddLabeledGauge(
      "profiler_hot_entity_cost",
      "Top-K entities by total cost: (reads+edits+micros) * (1 + fan-out)",
      [profiler] {
        std::vector<std::pair<obs::MetricLabel, double>> out;
        for (const obs::CostEntry& e : profiler->HotEntities(kProfilerTopK)) {
          out.push_back({obs::MetricLabel{"entity", e.name}, e.total_cost});
        }
        return out;
      });
  registry->AddLabeledGauge(
      "profiler_hot_entity_reads",
      "Ask decodes that touched each top-K entity",
      [profiler] {
        std::vector<std::pair<obs::MetricLabel, double>> out;
        for (const obs::CostEntry& e : profiler->HotEntities(kProfilerTopK)) {
          out.push_back({obs::MetricLabel{"entity", e.name},
                         static_cast<double>(e.requests)});
        }
        return out;
      });
  registry->AddLabeledGauge(
      "profiler_hot_entity_edits",
      "Edit churn (applied-edit ticks) on each top-K entity",
      [profiler] {
        std::vector<std::pair<obs::MetricLabel, double>> out;
        for (const obs::CostEntry& e : profiler->HotEntities(kProfilerTopK)) {
          out.push_back({obs::MetricLabel{"entity", e.name},
                         static_cast<double>(e.edits)});
        }
        return out;
      });
  registry->AddLabeledGauge(
      "profiler_expensive_rule_cost",
      "Top-K relations by total cost, weighted by Horn rules touching them",
      [profiler] {
        std::vector<std::pair<obs::MetricLabel, double>> out;
        for (const obs::CostEntry& e :
             profiler->ExpensiveRules(kProfilerTopK)) {
          out.push_back({obs::MetricLabel{"relation", e.name}, e.total_cost});
        }
        return out;
      });

  registry->AddInfo("health_transitions", [this] {
    std::string json = "[";
    bool first = true;
    for (const HealthTransition& t : health_log()) {
      if (!first) json += ",";
      first = false;
      json += "{\"sequence\":" + std::to_string(t.sequence) +
              ",\"from\":\"" + ServiceHealthName(t.from) + "\",\"to\":\"" +
              ServiceHealthName(t.to) + "\",\"reason\":\"" +
              obs::MetricsRegistry::JsonEscape(t.reason) + "\"}";
    }
    return json + "]";
  });
  registry->AddInfo("recovery", [this] {
    const durability::RecoveryReport& r = recovery_report_;
    return std::string("{") + "\"status\":\"" +
           obs::MetricsRegistry::JsonEscape(recovery_status_.ToString()) +
           "\",\"checkpoint_loaded\":" +
           (r.checkpoint_loaded ? "true" : "false") +
           ",\"checkpoint_sequence\":" +
           std::to_string(r.checkpoint_sequence) +
           ",\"replayed_records\":" + std::to_string(r.replayed_records) +
           ",\"skipped_records\":" + std::to_string(r.skipped_records) +
           ",\"quarantined_skipped\":" +
           std::to_string(r.quarantined_skipped) +
           ",\"torn_bytes_dropped\":" +
           std::to_string(r.torn_bytes_dropped) +
           ",\"last_sequence\":" + std::to_string(r.last_sequence) + "}";
  });
  registry->AddInfo("slowest_traces", [this] {
    return "\"" + obs::MetricsRegistry::JsonEscape(DumpTraces(5)) + "\"";
  });
}

std::string EditService::DumpTraces(size_t n) const {
  return obs::TraceRecorder::Global().DumpTraces(n);
}

obs::MetricsServer::Response EditService::ServeHttp(const std::string& path) {
  obs::MetricsServer::Response response;
  if (path == "/metrics" || path == "/") {
    response.body = registry_->ExposeText();
    return response;
  }
  if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = registry_->ExposeJson();
    return response;
  }
  if (path == "/health") {
    const ServiceHealth now = health();
    response.status = now == ServiceHealth::kHealthy ? 200 : 503;
    response.content_type = "text/plain; charset=utf-8";
    response.body = ServiceHealthName(now) + "\n";
    response.body += "role: " + ReplicationRoleName(role()) + "\n";
    response.body += "term: " + std::to_string(primary_term()) + "\n";
    switch (role()) {
      case ReplicationRole::kStandalone:
        break;
      case ReplicationRole::kPrimary:
        response.body +=
            "replication: followers=" +
            std::to_string(followers_connected()) +
            " min_acked=" + std::to_string(min_follower_applied()) +
            " applied=" + std::to_string(applied_sequence()) + "\n";
        break;
      case ReplicationRole::kFollower:
        response.body +=
            "replication: state=" +
            replication::FollowerStateName(follower_state()) +
            " lag_records=" + std::to_string(replication_lag_records()) +
            " lag_batches=" + std::to_string(replication_lag_batches()) +
            " applied=" + std::to_string(applied_sequence()) + "\n";
        break;
    }
    if (scrubber_ != nullptr) {
      response.body +=
          "scrub: passes=" + std::to_string(scrubber_->passes()) +
          " corruptions_found=" +
          std::to_string(scrubber_->corruptions_found()) + "\n";
      const std::string finding = scrubber_->last_finding();
      if (!finding.empty()) {
        response.body += "scrub_last_finding: " + finding + "\n";
      }
    }
    return response;
  }
  if (path == "/traces" || path.rfind("/traces?", 0) == 0) {
    size_t n = 10;
    if (ParseCountParam(path, "n", kMaxTraceDump, &n) == QueryParse::kBad) {
      return BadQueryResponse("n", kMaxTraceDump);
    }
    response.content_type = "text/plain; charset=utf-8";
    response.body = DumpTraces(n);
    return response;
  }
  if (path == "/profile" || path.rfind("/profile?", 0) == 0) {
    size_t k = kProfilerTopK;
    if (ParseCountParam(path, "k", kMaxProfileTopK, &k) == QueryParse::kBad) {
      return BadQueryResponse("k", kMaxProfileTopK);
    }
    response.content_type = "application/json";
    response.body = obs::CostProfiler::Global().ProfileJson(k);
    return response;
  }
  response.status = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body =
      "not found — try /metrics, /metrics.json, /health, /traces?n=10, "
      "/profile?k=10\n";
  return response;
}

void EditService::StartMetricsServer() {
  if (!options_.expose_metrics) return;
  registry_ = std::make_unique<obs::MetricsRegistry>();
  ExportMetrics(registry_.get());
  StatusOr<std::unique_ptr<obs::MetricsServer>> server =
      obs::MetricsServer::Start(
          options_.metrics_port,
          [this](const std::string& path) { return ServeHttp(path); });
  if (!server.ok()) {
    // Scraping is best-effort; a busy port must not take down serving.
    ONEEDIT_LOG(Warning) << "metrics listener failed to start: "
                         << server.status().ToString();
    return;
  }
  metrics_server_ = std::move(*server);
  ONEEDIT_LOG(Info) << "metrics listener on http://"
                    << metrics_server_->address();
}

}  // namespace serving
}  // namespace oneedit
