#include "serving/edit_service.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace oneedit {
namespace serving {
namespace {

/// The KG slots a request may write: its subject's slot, plus the object's
/// (reverse edits per Algorithm 2 write the object's forward slot too).
void AppendFootprint(const EditRequest& request,
                     std::vector<std::string>* out) {
  out->push_back(request.triple.subject);
  out->push_back(request.triple.object);
}

bool Overlaps(const EditRequest& request,
              const std::unordered_set<std::string>& entities) {
  return entities.count(request.triple.subject) > 0 ||
         entities.count(request.triple.object) > 0;
}

EditResult DegradedRejection(const std::string& why) {
  EditResult result;
  result.kind = EditResult::Kind::kRejected;
  result.message = "service is read-only degraded: " + why;
  return result;
}

}  // namespace

std::string ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kHealthy:
      return "healthy";
    case ServiceHealth::kReadOnlyDegraded:
      return "read_only_degraded";
    case ServiceHealth::kHalfOpenProbing:
      return "half_open_probing";
  }
  return "unknown";
}

EditService::EditService(std::unique_ptr<OneEditSystem> system,
                         const EditServiceOptions& options)
    : system_(std::move(system)),
      options_(options),
      durability_(options.durability) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  if (durability_ != nullptr && options_.recover_on_start) {
    // Recover before the writer exists: the system is still single-threaded
    // here, so replay needs no locks. With validation on, replayed batches
    // run through the same SelfHealer the live writer uses: validation is a
    // deterministic function of (pre-batch state, first WAL sequence), so a
    // crash that outran a quarantine verdict's journal record still
    // converges on the identical post-validation state.
    durability::ReplayApplier applier;
    if (options_.self_heal.validate_after_apply) {
      applier = [this](const durability::ReplayBatch& batch) {
        SelfHealer healer(system_.get(), options_.self_heal);
        (void)healer.ApplyValidated(batch.requests, batch.first_sequence);
      };
    }
    StatusOr<durability::RecoveryReport> recovered =
        durability_->Recover(system_.get(), applier);
    if (recovered.ok()) {
      recovery_report_ = *recovered;
    } else {
      // Serving an unrecovered state could silently drop acknowledged
      // edits; refuse writes instead and let reads answer what we have.
      // Not a WAL degradation: auto-heal must not paper over a recovery
      // failure, so this state needs an operator.
      recovery_status_ = recovered.status();
      TransitionHealth(ServiceHealth::kReadOnlyDegraded,
                       "startup recovery failed: " +
                           recovery_status_.ToString());
    }
  }
  writer_ = std::thread(&EditService::WriterLoop, this);
}

StatusOr<std::unique_ptr<EditService>> EditService::Create(
    KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config,
    const EditServiceOptions& options) {
  ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<OneEditSystem> system,
                           OneEditSystem::Create(kg, model, config));
  return std::make_unique<EditService>(std::move(system), options);
}

EditService::~EditService() { Stop(); }

std::future<StatusOr<EditResult>> EditService::Submit(EditRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<StatusOr<EditResult>> future = pending.promise.get_future();

  Statistics& stats = system_->statistics();
  if (pending.request.expired(pending.enqueued)) {
    stats.Add(Ticker::kDeadlineExpired);
    pending.promise.set_value(
        Status::DeadlineExceeded("request deadline already expired"));
    return future;
  }
  if (read_only()) {
    stats.Add(Ticker::kDegradedRejects);
    pending.promise.set_value(
        DegradedRejection("write-ahead logging is unavailable"));
    return future;
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (!stopping_ && queue_.size() >= options_.queue_capacity) {
      if (options_.reject_when_full) {
        lock.unlock();
        stats.Add(Ticker::kServingRejected);
        pending.promise.set_value(Status::ResourceExhausted(
            "edit queue full (capacity " +
            std::to_string(options_.queue_capacity) + ")"));
        return future;
      }
      const auto admissible = [this] {
        return stopping_ || queue_.size() < options_.queue_capacity;
      };
      if (pending.request.deadline.has_value()) {
        // Backpressure must not outlive the deadline: give up at the
        // deadline instant instead of blocking indefinitely.
        if (!queue_not_full_.wait_until(lock, *pending.request.deadline,
                                        admissible)) {
          lock.unlock();
          stats.Add(Ticker::kDeadlineExpired);
          pending.promise.set_value(Status::DeadlineExceeded(
              "deadline expired while waiting for queue capacity"));
          return future;
        }
      } else {
        queue_not_full_.wait(lock, admissible);
      }
    }
    if (stopping_) {
      lock.unlock();
      stats.Add(Ticker::kServingRejected);
      pending.promise.set_value(
          Status::Unavailable("EditService is stopped"));
      return future;
    }
    queue_.push_back(std::move(pending));
    stats.Add(Ticker::kServingSubmitted);
    stats.Record(Histogram::kServingQueueDepth, queue_.size());
  }
  queue_not_empty_.notify_one();
  return future;
}

Decode EditService::Ask(const std::string& subject,
                        const std::string& relation) const {
  // Touch the writer gate first: if a writer is waiting for the exclusive
  // lock it holds the gate, and this reader queues behind it.
  { std::lock_guard<std::mutex> gate(writer_gate_); }
  std::shared_lock<std::shared_mutex> lock(rw_mutex_);
  Decode decode = system_->Ask(subject, relation);
  system_->statistics().Add(Ticker::kServingReads);
  return decode;
}

void EditService::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !writer_busy_; });
}

void EditService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      // Already stopped; the writer is joined below only once.
    }
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (writer_.joinable()) writer_.join();

  // The writer has exited; whatever is still queued will never run.
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    orphans.swap(queue_);
  }
  for (Pending& pending : orphans) {
    system_->statistics().Add(Ticker::kServingRejected);
    pending.promise.set_value(
        Status::Unavailable("EditService stopped before this request ran"));
  }
  idle_.notify_all();
}

std::vector<HealthTransition> EditService::health_log() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_log_;
}

void EditService::TransitionHealth(ServiceHealth to,
                                   const std::string& reason) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  const ServiceHealth from = health_.load(std::memory_order_acquire);
  if (from == to) return;
  health_.store(to, std::memory_order_release);
  HealthTransition transition;
  transition.from = from;
  transition.to = to;
  transition.reason = reason;
  transition.sequence = ++health_transitions_seen_;
  system_->statistics().Add(Ticker::kHealthTransitions);
  ONEEDIT_LOG(Warning) << "EditService health: " << ServiceHealthName(from)
                       << " -> " << ServiceHealthName(to) << " [#"
                       << transition.sequence << "] " << reason;
  health_log_.push_back(std::move(transition));
}

void EditService::TryHeal() {
  TransitionHealth(ServiceHealth::kHalfOpenProbing,
                   "probing whether the durability environment recovered");
  Status healed;
  {
    std::unique_lock<std::mutex> gate(writer_gate_);
    std::unique_lock<std::shared_mutex> write_lock(rw_mutex_);
    gate.unlock();
    // A successful checkpoint proves the env can persist state again AND
    // repairs the WAL: whatever torn bytes the failure left are rotated
    // away, and any sequence numbers a failed append leaked are covered by
    // the checkpoint's last_sequence.
    healed = durability_->Checkpoint(*system_, &system_->statistics());
  }
  if (healed.ok()) {
    wal_degraded_.store(false, std::memory_order_release);
    TransitionHealth(ServiceHealth::kHealthy,
                     "heal probe succeeded: checkpoint published, WAL "
                     "rotated clean");
  } else {
    TransitionHealth(ServiceHealth::kReadOnlyDegraded,
                     "heal probe failed: " + healed.ToString());
  }
}

Status EditService::LogBatchWithRetry(
    const std::vector<EditRequest>& requests, Statistics* stats) {
  Status logged =
      durability_->LogBatch(requests, system_->config().method, stats);
  std::chrono::milliseconds backoff = options_.self_heal.wal_retry_backoff;
  for (size_t attempt = 0;
       !logged.ok() && attempt < options_.self_heal.wal_retry_limit;
       ++attempt) {
    stats->Add(Ticker::kWalRetries);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, options_.self_heal.wal_retry_backoff_cap);
    // The failed append may have left torn bytes mid-log, so a bare
    // re-append would corrupt the journal for replay. A checkpoint makes
    // the torn WAL redundant, rotates it clean, and covers any sequence
    // numbers the failed attempt consumed; the batch is then re-journaled
    // onto the fresh log.
    const Status repaired = durability_->Checkpoint(*system_, stats);
    if (!repaired.ok()) {
      logged = repaired;
      continue;
    }
    logged = durability_->LogBatch(requests, system_->config().method, stats);
  }
  return logged;
}

void EditService::ExpireDeadlinesLocked(std::vector<Pending>* expired) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->request.expired(now)) {
      expired->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

Status EditService::CheckpointNow() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "EditService has no durability manager attached");
  }
  return WithExclusive([this](OneEditSystem& system) {
    return durability_->Checkpoint(system, &system.statistics());
  });
}

void EditService::RejectDegraded(std::vector<Pending>* batch) {
  const std::string why = recovery_status_.ok()
                              ? std::string("write-ahead logging is unavailable")
                              : "startup recovery failed: " +
                                    recovery_status_.ToString();
  for (Pending& pending : *batch) {
    pending.promise.set_value(DegradedRejection(why));
  }
}

size_t EditService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::vector<EditService::Pending> EditService::NextBatch() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  if (!options_.coalesce) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    return batch;
  }

  // Entities touched by admitted requests, and by skipped ones: overlapping
  // either keeps a request queued so per-slot order is preserved.
  std::unordered_set<std::string> admitted;
  std::unordered_set<std::string> blocked;
  std::vector<std::string> footprint;
  auto it = queue_.begin();
  while (it != queue_.end() && batch.size() < options_.max_batch_size) {
    const EditRequest& request = it->request;
    if (request.op == EditRequest::Op::kUtterance) {
      // Unknown footprint until interpreted: run alone, bar what follows.
      if (batch.empty()) {
        batch.push_back(std::move(*it));
        queue_.erase(it);
      }
      break;
    }
    if (Overlaps(request, admitted) || Overlaps(request, blocked)) {
      footprint.clear();
      AppendFootprint(request, &footprint);
      blocked.insert(footprint.begin(), footprint.end());
      ++it;
      continue;
    }
    footprint.clear();
    AppendFootprint(request, &footprint);
    admitted.insert(footprint.begin(), footprint.end());
    batch.push_back(std::move(*it));
    it = queue_.erase(it);
  }
  return batch;
}

void EditService::WriterLoop() {
  const bool can_heal =
      durability_ != nullptr && options_.self_heal.auto_heal;
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    bool probe_heal = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      if (can_heal && wal_degraded_.load(std::memory_order_acquire)) {
        // WAL-degraded: wake on the heal cadence even with an empty queue.
        // A timeout (nothing queued, not stopping) means the probe is due;
        // queued leftovers are still popped below so Drain() terminates.
        const bool woke = queue_not_empty_.wait_for(
            lock, options_.self_heal.heal_probe_interval,
            [this] { return stopping_ || !queue_.empty(); });
        probe_heal = !woke;
      } else {
        queue_not_empty_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
      }
      if (stopping_) return;  // Stop() fails whatever is left.
      if (!probe_heal) {
        ExpireDeadlinesLocked(&expired);
        batch = NextBatch();
        writer_busy_ = !batch.empty();
      }
    }
    queue_not_full_.notify_all();
    Statistics& stats = system_->statistics();
    for (Pending& pending : expired) {
      stats.Add(Ticker::kDeadlineExpired);
      pending.promise.set_value(Status::DeadlineExceeded(
          "deadline expired while the request was queued"));
    }
    if (probe_heal) {
      TryHeal();
      idle_.notify_all();
      continue;
    }
    if (batch.empty()) {
      idle_.notify_all();
      continue;
    }

    std::vector<EditRequest> requests;
    requests.reserve(batch.size());
    for (const Pending& pending : batch) requests.push_back(pending.request);

    bool degraded = read_only();
    bool results_valid = false;
    std::vector<StatusOr<EditResult>> results;
    if (!degraded) {
      std::unique_lock<std::mutex> gate(writer_gate_);
      std::unique_lock<std::shared_mutex> write_lock(rw_mutex_);
      gate.unlock();
      uint64_t first_sequence = 0;
      if (durability_ != nullptr) {
        // Durability protocol: the batch must be journaled and fsynced
        // BEFORE it is applied — an acknowledged edit is always on disk.
        // Transient I/O failures get a bounded retry before we give up.
        const Status logged = LogBatchWithRetry(requests, &stats);
        if (!logged.ok()) {
          wal_degraded_.store(true, std::memory_order_release);
          TransitionHealth(ServiceHealth::kReadOnlyDegraded,
                           "edit WAL commit failed after " +
                               std::to_string(options_.self_heal
                                                  .wal_retry_limit) +
                               " retries: " + logged.ToString());
          degraded = true;
        } else {
          // LogBatch assigned this batch the sequences
          // [next_sequence - size, next_sequence): the first one seeds
          // validation so recovery replay re-derives the same verdict.
          first_sequence = durability_->next_sequence() - requests.size();
        }
      } else {
        first_sequence = ++nodur_seed_;
      }
      if (!degraded) {
        SelfHealer healer(system_.get(), options_.self_heal);
        HealedBatch healed = healer.ApplyValidated(requests, first_sequence);
        results = std::move(healed.results);
        results_valid = true;
        if (durability_ != nullptr && !healed.quarantined.empty()) {
          // Journal the verdicts so replay skips the poison up front
          // instead of re-running the whole heal loop.
          Status journaled = Status::OK();
          for (size_t index : healed.quarantined) {
            journaled = durability_->LogQuarantine(
                first_sequence + index, healed.quarantine_reason,
                system_->config().method, &stats);
            if (!journaled.ok()) break;
          }
          if (!journaled.ok()) {
            // Not acknowledged-edit loss: the verdict is re-derivable at
            // recovery (validation is deterministic). Prefer making the
            // post-quarantine state durable wholesale; if even that fails
            // the env is gone — degrade for FUTURE submissions, but still
            // deliver this batch's results (their records are on disk).
            const Status fallback =
                durability_->Checkpoint(*system_, &stats);
            if (!fallback.ok()) {
              wal_degraded_.store(true, std::memory_order_release);
              TransitionHealth(
                  ServiceHealth::kReadOnlyDegraded,
                  "quarantine verdict journal and fallback checkpoint "
                  "both failed: " +
                      fallback.ToString());
              degraded = true;
            }
          }
        }
        if (durability_ != nullptr && !degraded) {
          // A checkpoint failure is survivable — the WAL still covers
          // every committed edit — so it does not degrade the service.
          const Status cadence =
              durability_->OnBatchApplied(*system_, requests.size(), &stats);
          if (!cadence.ok()) {
            ONEEDIT_LOG(Warning)
                << "checkpoint failed (WAL still intact): "
                << cadence.ToString();
          }
        }
      }
    }
    if (degraded && !results_valid) {
      stats.Add(Ticker::kDegradedRejects, batch.size());
      RejectDegraded(&batch);
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        writer_busy_ = false;
      }
      idle_.notify_all();
      continue;
    }
    stats.Add(Ticker::kServingBatches);
    stats.Record(Histogram::kServingBatchSize, batch.size());
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      stats.Record(
          Histogram::kServingLatencyMicros,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - batch[i].enqueued)
                  .count()));
      batch[i].promise.set_value(std::move(results[i]));
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      writer_busy_ = false;
    }
    idle_.notify_all();
  }
}

}  // namespace serving
}  // namespace oneedit
