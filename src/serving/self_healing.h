#ifndef ONEEDIT_SERVING_SELF_HEALING_H_
#define ONEEDIT_SERVING_SELF_HEALING_H_

#include <chrono>
#include <string>
#include <vector>

#include "core/oneedit.h"
#include "data/dataset.h"
#include "util/statusor.h"

namespace oneedit {
namespace serving {

/// Knobs for the write path's self-healing (docs/self_healing.md).
/// Thresholds default lenient: validation exists to catch pathological
/// edits (superposition blowups, poisoned batches), not to re-run the
/// offline eval on every write.
struct SelfHealOptions {
  /// Master switch: validate every applied batch under the exclusive lock
  /// (reliability probe per edit + sampled locality canaries) and roll the
  /// batch back when validation trips.
  bool validate_after_apply = true;
  /// Untouched facts sampled from the KG as locality canaries per batch.
  size_t canary_sample = 8;
  /// Candidates sampled per kept canary. The sampler prefers candidates the
  /// model currently decodes with margin >= its decode_margin: a marginal
  /// decode flips under benign batch drift and would false-positive the
  /// whole batch. Deterministic — margins are a function of the pre-batch
  /// state the validator (and crash-recovery replay) starts from.
  size_t canary_oversample = 4;
  /// Canary decodes allowed to change before the batch counts as poisoned.
  /// A strict 0 would flag benign drift: a coalesced batch of weight-writing
  /// edits legitimately nudges a couple of decodes, and a SINGLE undiluted
  /// edit (batch dilution does not soften it) can flip up to ~3 of 8 — the
  /// bisection probes subsets down to size 1, so the threshold must clear
  /// the benign single-edit case. A poison flips most of the sample (and
  /// usually fails reliability outright), leaving a wide gap above 3.
  size_t max_canary_flips = 3;
  /// Probe that each applied kEdit request decodes its new object.
  bool reliability_probe = true;
  /// Transient WAL/IO failures retried with exponential backoff before the
  /// service degrades (0 disables retry).
  size_t wal_retry_limit = 3;
  /// First retry backoff; doubled per retry up to the cap.
  std::chrono::milliseconds wal_retry_backoff{1};
  std::chrono::milliseconds wal_retry_backoff_cap{8};
  /// Degraded-mode auto-heal: periodically enter a half-open probing state
  /// and publish a checkpoint; success promotes the service back to
  /// healthy without a restart.
  bool auto_heal = true;
  std::chrono::milliseconds heal_probe_interval{25};
};

/// What ApplyValidated decided for one coalesced batch.
struct HealedBatch {
  /// One result per submitted request, in order; quarantined requests hold
  /// EditResult::kQuarantined values (a policy decision, not an error).
  std::vector<StatusOr<EditResult>> results;
  /// Indices (into the submitted batch) that were quarantined, ascending.
  /// The caller maps index i to WAL sequence `first_sequence + i` when
  /// journaling verdicts.
  std::vector<size_t> quarantined;
  std::string quarantine_reason;
  /// Apply-then-undo episodes (1 per failed validation, plus bisection
  /// probes are transactional and not counted here).
  size_t rollbacks = 0;
};

/// The post-apply validation + rollback + bisection + quarantine engine.
///
/// ApplyValidated applies a coalesced batch inside a OneEditSystem::BatchTxn
/// and validates it with two in-process checks, both cheap enough to run
/// under the writer's already-held exclusive lock:
///
///  - reliability: each applied kEdit request must decode its new object
///    (alias-canonicalized via the KG);
///  - locality: a deterministic sample of untouched facts (canaries) must
///    decode the same answer as immediately before the batch.
///
/// On failure the transaction aborts — weights restored from snapshot, KG
/// rolled back, editor ledgers/cache/adaptors undone — and the poison
/// request is isolated by bisecting the batch with transactional half-batch
/// probes (a failing reliability probe is treated as a symptom, not an
/// indictment: collateral drift from a poison can flip an innocent
/// neighbor's decode). The poison resolves as kQuarantined and the
/// innocents are re-applied as one batch; the loop repeats until validation
/// passes (or nothing is left).
///
/// Everything here is a deterministic function of (pre-batch system state,
/// requests, validation_seed): the canary sample, every probe's key noise,
/// and therefore the verdict. The serving layer seeds with the batch's
/// first WAL sequence, so crash-recovery replay — which re-runs this very
/// function from the same pre-batch state — reaches the identical verdict
/// even when the crash outran the journaled quarantine record.
class SelfHealer {
 public:
  SelfHealer(OneEditSystem* system, const SelfHealOptions& options)
      : system_(system), options_(options) {}

  HealedBatch ApplyValidated(const std::vector<EditRequest>& requests,
                             uint64_t validation_seed);

 private:
  struct Canaries {
    std::vector<Probe> probes;
    std::vector<std::string> baselines;
  };

  struct Verdict {
    bool ok = true;
    size_t canary_flips = 0;
    /// Indices (into the validated subset) whose reliability probe failed.
    std::vector<size_t> reliability_failures;
    std::string reason;
  };

  /// Samples canaries for `requests`' footprint and records their pre-batch
  /// decodes. Call with the pre-batch state active.
  Canaries SampleWithBaselines(const std::vector<EditRequest>& requests,
                               uint64_t seed) const;

  /// Post-apply checks for `requests` (already applied, results in hand).
  Verdict Validate(const std::vector<EditRequest>& requests,
                   const std::vector<StatusOr<EditResult>>& results,
                   const Canaries& canaries) const;

  /// Transactional probe: applies `subset` alone from the current (pre-
  /// batch) state, validates, and undoes it. True if validation trips.
  bool SubsetPoisons(const std::vector<EditRequest>& subset,
                     const Canaries& canaries);

  /// Bisection over a subset known to fail validation: returns the index of
  /// the isolated poison request within `subset`.
  size_t IsolatePoison(const std::vector<EditRequest>& subset,
                       const Canaries& canaries);

  bool SameEntity(const std::string& a, const std::string& b) const;

  OneEditSystem* system_;
  SelfHealOptions options_;
};

}  // namespace serving
}  // namespace oneedit

#endif  // ONEEDIT_SERVING_SELF_HEALING_H_
