#ifndef ONEEDIT_OBS_PROFILER_H_
#define ONEEDIT_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace oneedit {
namespace obs {

/// One ranked row from the cost profiler's aggregator: a named key (entity
/// or relation) with its accumulated traffic and the graph weight joined in
/// at aggregation time.
struct CostEntry {
  std::string name;
  /// Ask decodes that touched the key (reads).
  uint64_t requests = 0;
  /// Cumulative read micros attributed to the key.
  uint64_t read_micros = 0;
  /// Edit-apply operations that touched the key (churn).
  uint64_t edits = 0;
  /// Cumulative edit-apply micros attributed to the key.
  uint64_t edit_micros = 0;
  /// Graph weight at aggregation time: KG fan-out (entities) or the number
  /// of Horn rules touching the relation (relations). 0 without a provider.
  uint64_t weight = 0;
  /// The includeguardian-style total cost:
  ///   (requests + edits + read_micros + edit_micros) * (1 + weight)
  /// i.e. traffic volume-plus-time scaled by how much of the graph hangs
  /// off the key. The op counts keep the ranking meaningful even when a
  /// single op is below the clock's microsecond resolution.
  double total_cost = 0.0;

  uint64_t ops() const { return requests + edits; }
  uint64_t micros() const { return read_micros + edit_micros; }
};

/// Process-wide, always-compiled-in cost accounting for the serving hot
/// paths: which entities and relations are expensive, not just how slow a
/// request was.
///
/// Write side (RecordRead / RecordEdit) is lock-free and designed to sit
/// directly in the Ask decode and edit-apply paths: the key's 64-bit
/// fingerprint picks a slot in a fixed-capacity open-addressed table, and
/// a hit is a handful of relaxed fetch_adds. Tables are sharded by thread
/// (hash of the thread id picks one of kShards independent tables) so
/// concurrent writers rarely contend on a cache line; the aggregator sums
/// shards per key. A table that fills up drops new keys into a counter
/// instead of blocking or resizing — profiling telemetry must never stall
/// the serving path.
///
/// Read side (HotEntities / ExpensiveRules / ProfileJson) merges the shards
/// under a mutex, joins each key with a registered graph-weight provider
/// (KG fan-out for entities, rules-touching counts for relations), computes
/// the total-cost ranking, and caches it for `aggregation_interval_millis`
/// so scrapes and admin queries between cycles see a stable top-K.
///
/// Mirrors TraceRecorder: a Global() singleton with a runtime enable switch
/// (default off → every record call is one acquire load), so the hooks stay
/// compiled into the hot path unconditionally.
class CostProfiler {
 public:
  /// Independent writer shards per key kind (thread id hash picks one).
  static constexpr size_t kShards = 8;
  /// Slots per entity shard (total capacity: kShards * kEntitySlots distinct
  /// writer-thread x entity combinations).
  static constexpr size_t kEntitySlots = 1024;
  /// Slots per relation shard (schemas are small).
  static constexpr size_t kRelationSlots = 256;
  /// Linear probes before a new key is counted as dropped.
  static constexpr size_t kMaxProbes = 16;

  static CostProfiler& Global();

  /// Master switch, default off. When disabled every record call is a
  /// near-free no-op, so the profiler can stay hooked into the hot path.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Batch graph-weight provider: given key names, returns one weight per
  /// name (same order). Registered by the serving layer (obs stays
  /// dependency-free); called under the aggregation mutex, at most once per
  /// aggregation cycle, so one provider call can pin one KG snapshot.
  using WeightProvider =
      std::function<std::vector<uint64_t>(const std::vector<std::string>&)>;

  /// Provider joining entities with KG fan-out (out-degree + in-degree).
  /// `owner` tags the registration so ClearWeightProviders(owner) removes
  /// only a provider this owner still holds (a later registration by
  /// another service wins and survives the first owner's shutdown).
  void SetEntityWeightProvider(WeightProvider provider,
                               const void* owner = nullptr);
  /// Provider joining relations with how many Horn rules touch them.
  void SetRelationWeightProvider(WeightProvider provider,
                                 const void* owner = nullptr);
  /// Drops providers registered by `owner` (nullptr drops both
  /// unconditionally). A service shutting down must call this before the
  /// state its providers capture is destroyed.
  void ClearWeightProviders(const void* owner = nullptr);

  // --- Hot-path write side ----------------------------------------------------

  /// Ticks one Ask decode: `micros` of read work attributed to both the
  /// subject entity and the relation. No-op when disabled.
  void RecordRead(std::string_view entity, std::string_view relation,
                  uint64_t micros);

  /// Ticks one applied edit: `micros` of apply work attributed to the
  /// subject and the relation; the object is ticked for churn (edits) only,
  /// so a batch's micros are not double-counted across entities. No-op when
  /// disabled.
  void RecordEdit(std::string_view subject, std::string_view relation,
                  std::string_view object, uint64_t micros);

  // --- Aggregated read side ---------------------------------------------------

  /// Top `k` entities by total cost (descending, name-ascending tiebreak —
  /// deterministic). Reaggregates if the cached ranking is older than the
  /// aggregation interval.
  std::vector<CostEntry> HotEntities(size_t k);

  /// Top `k` relations by total cost; "which rules/relations are expensive"
  /// (a relation's weight is the number of Horn rules touching it).
  std::vector<CostEntry> ExpensiveRules(size_t k);

  /// Forces a reaggregation now, ignoring the interval. Tests and the
  /// /profile endpoint's refresh path use this.
  void Aggregate();

  /// Runs the interval-gated reaggregation without reading a ranking, so
  /// the tracked-count gauges agree with the top-K families within one
  /// scrape regardless of export order.
  void RefreshIfStale();

  /// The /profile exposition: enabled flag, aggregate counters, and the two
  /// top-`k` rankings as one JSON object.
  std::string ProfileJson(size_t k);

  /// How long a computed ranking is served before the next query
  /// reaggregates. 0 = reaggregate on every query.
  void SetAggregationIntervalMillis(uint64_t millis) {
    interval_millis_.store(millis, std::memory_order_relaxed);
  }
  uint64_t aggregation_interval_millis() const {
    return interval_millis_.load(std::memory_order_relaxed);
  }

  // --- Gauges -----------------------------------------------------------------

  /// Distinct keys seen by the last aggregation.
  uint64_t entities_tracked() const {
    return entities_tracked_.load(std::memory_order_relaxed);
  }
  uint64_t relations_tracked() const {
    return relations_tracked_.load(std::memory_order_relaxed);
  }
  /// Ticks lost because a table shard was full (new-key pressure).
  uint64_t dropped() const;
  /// Aggregation cycles completed.
  uint64_t aggregations() const {
    return aggregations_.load(std::memory_order_relaxed);
  }

  /// Testing only: zero every slot, counter, cache, and provider. Callers
  /// must guarantee no concurrent Record* calls (the write side is not
  /// reset-safe mid-tick).
  void ResetForTesting();

 private:
  struct Slot {
    /// 0 = empty; otherwise the key's nonzero fingerprint. Claimed by CAS.
    std::atomic<uint64_t> fp{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> read_micros{0};
    std::atomic<uint64_t> edits{0};
    std::atomic<uint64_t> edit_micros{0};
    /// Release-published by the claiming thread after `name` is written;
    /// the aggregator skips slots whose name is not yet readable.
    std::atomic<bool> name_ready{false};
    std::string name;
  };

  template <size_t N>
  struct Table {
    Slot slots[N];
    std::atomic<uint64_t> dropped{0};
  };

  CostProfiler() = default;

  /// Finds or claims `name`'s slot in one shard table and applies the
  /// deltas; bumps the shard's dropped counter when the probe window is
  /// exhausted.
  template <size_t N>
  static void Tick(Table<N>& table, std::string_view name, uint64_t requests,
                   uint64_t read_micros, uint64_t edits, uint64_t edit_micros);

  /// Which shard this thread writes to.
  static size_t ShardForThisThread();

  /// Merges shards, joins weights, recomputes both rankings. Caller holds
  /// agg_mutex_.
  void AggregateLocked();
  /// Reaggregates if the cache is stale. Caller holds agg_mutex_.
  void MaybeAggregateLocked();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> interval_millis_{500};

  Table<kEntitySlots> entity_shards_[kShards];
  Table<kRelationSlots> relation_shards_[kShards];

  std::mutex agg_mutex_;
  WeightProvider entity_weights_;              // agg_mutex_
  WeightProvider relation_weights_;            // agg_mutex_
  const void* entity_weights_owner_ = nullptr;    // agg_mutex_
  const void* relation_weights_owner_ = nullptr;  // agg_mutex_
  std::vector<CostEntry> hot_entities_;     // agg_mutex_
  std::vector<CostEntry> expensive_rules_;  // agg_mutex_
  uint64_t last_aggregate_ns_ = 0;          // agg_mutex_; 0 = never

  std::atomic<uint64_t> entities_tracked_{0};
  std::atomic<uint64_t> relations_tracked_{0};
  std::atomic<uint64_t> aggregations_{0};
};

}  // namespace obs
}  // namespace oneedit

#endif  // ONEEDIT_OBS_PROFILER_H_
