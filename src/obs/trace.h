#ifndef ONEEDIT_OBS_TRACE_H_
#define ONEEDIT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace oneedit {
namespace obs {

/// Request-scoped trace identity, carried inside EditRequest (and created
/// ad hoc on the read path). `trace_id == 0` means "not traced": every
/// tracing call is a near-free no-op for such a context, so the tracer can
/// stay compiled into the hot path and be toggled at runtime.
struct TraceContext {
  /// Also the id of the trace's root ("request") span.
  uint64_t trace_id = 0;
  /// Span id new child spans parent under (the root span, until a nested
  /// Span temporarily deepens it).
  uint64_t parent_span = 0;
  /// Steady-clock nanoseconds when the trace began (Submit entry / read
  /// entry) — the root span's start.
  uint64_t start_ns = 0;

  bool active() const { return trace_id != 0; }
};

/// Monotonic nanoseconds (steady clock) — the tracer's time base.
uint64_t TraceNowNanos();

/// One completed span, as drained from the ring buffers. `name` is always a
/// string literal (the recorder stores the pointer, not a copy).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  /// 0 for the trace's root span.
  uint64_t parent_id = 0;
  const char* name = "";
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;

  uint64_t duration_ns() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

/// One reconstructed trace (DumpTraces): its spans and end-to-end duration.
struct TraceSummary {
  uint64_t trace_id = 0;
  uint64_t duration_ns = 0;
  std::vector<SpanRecord> spans;
};

/// Process-wide span recorder: a fixed-size lock-free ring buffer per
/// thread, drained on demand.
///
/// Writes are wait-free for the owning thread: each span becomes one slot
/// of relaxed atomic stores plus a release publish of the slot's sequence
/// number; old spans are overwritten once the ring wraps (tracing is
/// diagnostic telemetry — losing the oldest spans under load is the
/// intended behavior, never blocking the serving path). Readers (Drain,
/// DumpTraces) run concurrently from any thread: a slot whose sequence
/// changes mid-copy is discarded, so a torn record is never surfaced.
/// All slot accesses are atomics, keeping the concurrency TSan-clean.
class TraceRecorder {
 public:
  /// Spans each thread's ring retains before wrapping.
  static constexpr size_t kRingCapacity = 4096;

  static TraceRecorder& Global();

  /// Master switch, default off. When disabled StartTrace returns an
  /// inactive context and every record call is a no-op.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Mints a new trace rooted "now". Inactive (all zeros) when disabled.
  TraceContext StartTrace();

  /// Records a completed span under `ctx`'s current parent. No-op when the
  /// context is inactive. `name` must be a string literal.
  void Record(const TraceContext& ctx, const char* name, uint64_t start_ns,
              uint64_t end_ns);

  /// Records the trace's root span (span id == trace id, parent 0),
  /// covering ctx.start_ns .. end_ns. Call once, when the request resolves.
  void RecordRoot(const TraceContext& ctx, const char* name, uint64_t end_ns);

  /// Allocates a span id (used by Span to pre-register itself as the parent
  /// of its children before it completes).
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a completed span with an explicit span id (one obtained from
  /// NextSpanId and advertised as a parent while the span was open).
  void RecordWithId(const TraceContext& ctx, uint64_t span_id,
                    const char* name, uint64_t start_ns, uint64_t end_ns);

  /// Snapshot of every intact span across all thread rings, oldest first
  /// per ring. Concurrent-safe; in-flight slots are skipped.
  std::vector<SpanRecord> Drain() const;

  /// Reconstructs whole traces from the rings and returns the slowest `n`
  /// (by root-span duration, falling back to the span envelope when the
  /// root wrapped out), slowest first.
  std::vector<TraceSummary> SlowestTraces(size_t n) const;

  /// The slowest-`n` recent traces as a human-readable indented tree — the
  /// admin "where did this edit spend its time" hook.
  std::string DumpTraces(size_t n) const;

  /// Testing: forget every recorded span (rings stay registered).
  void Clear();

 private:
  struct Slot {
    /// 0 = never written; odd = write in progress; even = publish count.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<const char*> name{""};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> end_ns{0};
  };

  struct Ring {
    /// Next write position; only the owning thread advances it.
    std::atomic<uint64_t> head{0};
    Slot slots[kRingCapacity];
  };

  TraceRecorder() = default;

  Ring* RingForThisThread();
  void Write(Ring* ring, uint64_t trace_id, uint64_t span_id,
             uint64_t parent_id, const char* name, uint64_t start_ns,
             uint64_t end_ns);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  /// Registration of per-thread rings. Rings are created on a thread's
  /// first span and never destroyed (bounded by peak thread count); the
  /// mutex-free fast path never touches this list.
  std::atomic<size_t> ring_count_{0};
  static constexpr size_t kMaxRings = 256;
  std::atomic<Ring*> rings_[kMaxRings] = {};
};

/// Installs `ctx` as the calling thread's ambient trace for the scope, so
/// spans opened anywhere down the call stack (core, durability, editor)
/// attach to it without threading a context through every signature.
/// Nestable; restores the previous ambient context on destruction.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The calling thread's ambient context (inactive if none installed).
  static const TraceContext& Current();

 private:
  TraceContext saved_;
};

/// RAII span over the thread's ambient trace (or an explicit context):
/// captures the start tick at construction, records the completed span at
/// destruction, and makes itself the parent of spans opened within its
/// lifetime. When the ambient trace is inactive the whole object is a
/// no-op costing two loads.
class Span {
 public:
  explicit Span(const char* name);
  Span(const TraceContext& ctx, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Open(const TraceContext& ctx, const char* name);

  TraceContext ctx_;          // inactive => disabled span
  uint64_t span_id_ = 0;
  uint64_t start_ns_ = 0;
  const char* name_ = "";
  uint64_t saved_parent_ = 0;  // ambient parent restored on close
  bool ambient_ = false;
};

}  // namespace obs
}  // namespace oneedit

#endif  // ONEEDIT_OBS_TRACE_H_
