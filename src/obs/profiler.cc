#include "obs/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <unordered_map>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace oneedit {
namespace obs {

namespace {

/// FNV-1a over the key name; 0 is reserved for "empty slot".
uint64_t Fingerprint(std::string_view name) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

/// Formats a double the same way for /profile JSON and test comparisons.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double TotalCost(const CostEntry& e) {
  return static_cast<double>(e.requests + e.edits + e.read_micros +
                             e.edit_micros) *
         static_cast<double>(1 + e.weight);
}

void SortRanking(std::vector<CostEntry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const CostEntry& a, const CostEntry& b) {
              if (a.total_cost != b.total_cost)
                return a.total_cost > b.total_cost;
              return a.name < b.name;  // deterministic tiebreak
            });
}

void AppendEntryJson(const std::vector<CostEntry>& entries, size_t k,
                     std::string* out) {
  *out += "[";
  const size_t n = std::min(k, entries.size());
  for (size_t i = 0; i < n; ++i) {
    const CostEntry& e = entries[i];
    if (i > 0) *out += ",";
    *out += "{\"name\":\"" + MetricsRegistry::JsonEscape(e.name) + "\"";
    *out += ",\"requests\":" + std::to_string(e.requests);
    *out += ",\"read_micros\":" + std::to_string(e.read_micros);
    *out += ",\"edits\":" + std::to_string(e.edits);
    *out += ",\"edit_micros\":" + std::to_string(e.edit_micros);
    *out += ",\"weight\":" + std::to_string(e.weight);
    *out += ",\"total_cost\":" + FormatDouble(e.total_cost);
    *out += "}";
  }
  *out += "]";
}

}  // namespace

CostProfiler& CostProfiler::Global() {
  static CostProfiler* profiler = new CostProfiler();
  return *profiler;
}

void CostProfiler::SetEntityWeightProvider(WeightProvider provider,
                                           const void* owner) {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  entity_weights_ = std::move(provider);
  entity_weights_owner_ = owner;
}

void CostProfiler::SetRelationWeightProvider(WeightProvider provider,
                                             const void* owner) {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  relation_weights_ = std::move(provider);
  relation_weights_owner_ = owner;
}

void CostProfiler::ClearWeightProviders(const void* owner) {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  if (owner == nullptr || entity_weights_owner_ == owner) {
    entity_weights_ = nullptr;
    entity_weights_owner_ = nullptr;
  }
  if (owner == nullptr || relation_weights_owner_ == owner) {
    relation_weights_ = nullptr;
    relation_weights_owner_ = nullptr;
  }
}

size_t CostProfiler::ShardForThisThread() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kShards;
  return shard;
}

template <size_t N>
void CostProfiler::Tick(Table<N>& table, std::string_view name,
                        uint64_t requests, uint64_t read_micros,
                        uint64_t edits, uint64_t edit_micros) {
  if (name.empty()) return;
  const uint64_t fp = Fingerprint(name);
  size_t idx = static_cast<size_t>(fp % N);
  for (size_t probe = 0; probe < kMaxProbes; ++probe, idx = (idx + 1) % N) {
    Slot& slot = table.slots[idx];
    uint64_t cur = slot.fp.load(std::memory_order_acquire);
    if (cur == 0) {
      if (slot.fp.compare_exchange_strong(cur, fp,
                                          std::memory_order_acq_rel)) {
        // CAS winner is the slot's sole name writer; the release store of
        // name_ready publishes the string to the aggregator.
        slot.name.assign(name.data(), name.size());
        slot.name_ready.store(true, std::memory_order_release);
        cur = fp;
      }
      // On CAS failure `cur` holds the occupant's fingerprint; fall through.
    }
    if (cur == fp) {
      if (requests != 0)
        slot.requests.fetch_add(requests, std::memory_order_relaxed);
      if (read_micros != 0)
        slot.read_micros.fetch_add(read_micros, std::memory_order_relaxed);
      if (edits != 0) slot.edits.fetch_add(edits, std::memory_order_relaxed);
      if (edit_micros != 0)
        slot.edit_micros.fetch_add(edit_micros, std::memory_order_relaxed);
      return;
    }
  }
  table.dropped.fetch_add(1, std::memory_order_relaxed);
}

void CostProfiler::RecordRead(std::string_view entity,
                              std::string_view relation, uint64_t micros) {
  if (!enabled()) return;
  const size_t shard = ShardForThisThread();
  Tick(entity_shards_[shard], entity, /*requests=*/1, micros, 0, 0);
  Tick(relation_shards_[shard], relation, /*requests=*/1, micros, 0, 0);
}

void CostProfiler::RecordEdit(std::string_view subject,
                              std::string_view relation,
                              std::string_view object, uint64_t micros) {
  if (!enabled()) return;
  const size_t shard = ShardForThisThread();
  Tick(entity_shards_[shard], subject, 0, 0, /*edits=*/1, micros);
  if (!object.empty() && object != subject) {
    // Churn only: the apply micros are already attributed to the subject.
    Tick(entity_shards_[shard], object, 0, 0, /*edits=*/1, 0);
  }
  Tick(relation_shards_[shard], relation, 0, 0, /*edits=*/1, micros);
}

uint64_t CostProfiler::dropped() const {
  uint64_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    total += entity_shards_[s].dropped.load(std::memory_order_relaxed);
    total += relation_shards_[s].dropped.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

/// Merges every published slot of `shards` into a per-name map.
template <typename TableArray>
void MergeShards(const TableArray& shards,
                 std::unordered_map<std::string, CostEntry>* merged) {
  for (const auto& table : shards) {
    for (const auto& slot : table.slots) {
      if (slot.fp.load(std::memory_order_acquire) == 0) continue;
      if (!slot.name_ready.load(std::memory_order_acquire)) continue;
      CostEntry& e = (*merged)[slot.name];
      if (e.name.empty()) e.name = slot.name;
      e.requests += slot.requests.load(std::memory_order_relaxed);
      e.read_micros += slot.read_micros.load(std::memory_order_relaxed);
      e.edits += slot.edits.load(std::memory_order_relaxed);
      e.edit_micros += slot.edit_micros.load(std::memory_order_relaxed);
    }
  }
}

std::vector<CostEntry> RankMerged(
    std::unordered_map<std::string, CostEntry> merged,
    const CostProfiler::WeightProvider& weights) {
  std::vector<CostEntry> entries;
  entries.reserve(merged.size());
  for (auto& [name, entry] : merged) entries.push_back(std::move(entry));
  if (weights != nullptr && !entries.empty()) {
    std::vector<std::string> names;
    names.reserve(entries.size());
    for (const CostEntry& e : entries) names.push_back(e.name);
    const std::vector<uint64_t> w = weights(names);
    for (size_t i = 0; i < entries.size() && i < w.size(); ++i) {
      entries[i].weight = w[i];
    }
  }
  for (CostEntry& e : entries) e.total_cost = TotalCost(e);
  SortRanking(&entries);
  return entries;
}

}  // namespace

void CostProfiler::AggregateLocked() {
  std::unordered_map<std::string, CostEntry> entities;
  std::unordered_map<std::string, CostEntry> relations;
  MergeShards(entity_shards_, &entities);
  MergeShards(relation_shards_, &relations);
  hot_entities_ = RankMerged(std::move(entities), entity_weights_);
  expensive_rules_ = RankMerged(std::move(relations), relation_weights_);
  entities_tracked_.store(hot_entities_.size(), std::memory_order_relaxed);
  relations_tracked_.store(expensive_rules_.size(),
                           std::memory_order_relaxed);
  last_aggregate_ns_ = TraceNowNanos();
  if (last_aggregate_ns_ == 0) last_aggregate_ns_ = 1;
  aggregations_.fetch_add(1, std::memory_order_relaxed);
}

void CostProfiler::MaybeAggregateLocked() {
  const uint64_t interval_ns =
      interval_millis_.load(std::memory_order_relaxed) * 1000000ull;
  if (last_aggregate_ns_ != 0 &&
      TraceNowNanos() - last_aggregate_ns_ < interval_ns) {
    return;
  }
  AggregateLocked();
}

void CostProfiler::Aggregate() {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  AggregateLocked();
}

void CostProfiler::RefreshIfStale() {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  MaybeAggregateLocked();
}

std::vector<CostEntry> CostProfiler::HotEntities(size_t k) {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  MaybeAggregateLocked();
  const size_t n = std::min(k, hot_entities_.size());
  return {hot_entities_.begin(), hot_entities_.begin() + n};
}

std::vector<CostEntry> CostProfiler::ExpensiveRules(size_t k) {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  MaybeAggregateLocked();
  const size_t n = std::min(k, expensive_rules_.size());
  return {expensive_rules_.begin(), expensive_rules_.begin() + n};
}

std::string CostProfiler::ProfileJson(size_t k) {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  MaybeAggregateLocked();
  std::string out = "{";
  out += "\"enabled\":" + std::string(enabled() ? "true" : "false");
  out += ",\"k\":" + std::to_string(k);
  out += ",\"aggregations\":" +
         std::to_string(aggregations_.load(std::memory_order_relaxed));
  out += ",\"interval_millis\":" +
         std::to_string(interval_millis_.load(std::memory_order_relaxed));
  out += ",\"entities_tracked\":" +
         std::to_string(entities_tracked_.load(std::memory_order_relaxed));
  out += ",\"relations_tracked\":" +
         std::to_string(relations_tracked_.load(std::memory_order_relaxed));
  out += ",\"dropped\":" + std::to_string(dropped());
  out += ",\"hot_entities\":";
  AppendEntryJson(hot_entities_, k, &out);
  out += ",\"expensive_rules\":";
  AppendEntryJson(expensive_rules_, k, &out);
  out += "}";
  return out;
}

void CostProfiler::ResetForTesting() {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  auto reset_table = [](auto& table) {
    for (auto& slot : table.slots) {
      slot.name_ready.store(false, std::memory_order_relaxed);
      slot.requests.store(0, std::memory_order_relaxed);
      slot.read_micros.store(0, std::memory_order_relaxed);
      slot.edits.store(0, std::memory_order_relaxed);
      slot.edit_micros.store(0, std::memory_order_relaxed);
      slot.fp.store(0, std::memory_order_relaxed);
    }
    table.dropped.store(0, std::memory_order_relaxed);
  };
  for (size_t s = 0; s < kShards; ++s) {
    reset_table(entity_shards_[s]);
    reset_table(relation_shards_[s]);
  }
  entity_weights_ = nullptr;
  relation_weights_ = nullptr;
  entity_weights_owner_ = nullptr;
  relation_weights_owner_ = nullptr;
  hot_entities_.clear();
  expensive_rules_.clear();
  last_aggregate_ns_ = 0;
  entities_tracked_.store(0, std::memory_order_relaxed);
  relations_tracked_.store(0, std::memory_order_relaxed);
  aggregations_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace oneedit
