#ifndef ONEEDIT_OBS_METRICS_REGISTRY_H_
#define ONEEDIT_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace oneedit {
namespace obs {

/// What a histogram provider hands the registry for one exposition pass.
/// Buckets are cumulative counts keyed by their inclusive upper bound, in
/// ascending bound order, empty leading/trailing buckets elided; the
/// quantiles are exact-to-bucket (docs/observability.md).
struct HistogramExposition {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (le, cumulative)
};

/// One label for a gauge family member, e.g. {"state", "healthy"}.
struct MetricLabel {
  std::string key;
  std::string value;
};

/// A pull-model metrics registry: sources register value *providers* (not
/// values), and each ExposeText/ExposeJson call samples every provider at
/// scrape time. Providers must be thread-safe — the metrics server scrapes
/// from its own thread while the service runs.
///
/// Deliberately dependency-free (util-level): the serving layer registers
/// its Statistics tickers/histograms, health machine, and WAL/checkpoint
/// state through the generic Add* calls, so obs never needs to see those
/// types and the library layering stays acyclic.
class MetricsRegistry {
 public:
  /// Monotonic counter. Exposed as `<prefix><name>_total`.
  void AddCounter(const std::string& name, const std::string& help,
                  std::function<uint64_t()> value);

  /// Point-in-time value. Exposed as `<prefix><name>`.
  void AddGauge(const std::string& name, const std::string& help,
                std::function<double()> value);

  /// A gauge family with labels per member (e.g. a one-hot health state
  /// set). The provider returns every member each scrape.
  void AddLabeledGauge(
      const std::string& name, const std::string& help,
      std::function<std::vector<std::pair<MetricLabel, double>>()> values);

  /// A counter family with labels per member (e.g. per-shard request
  /// totals). Exposed as `<prefix><name>_total{key="value"}`; the provider
  /// returns every member each scrape, like AddLabeledGauge.
  void AddLabeledCounter(
      const std::string& name, const std::string& help,
      std::function<std::vector<std::pair<MetricLabel, uint64_t>>()> values);

  /// Value distribution. Text exposition emits a summary family (quantile
  /// labels + _sum/_count), a `<name>_max` gauge, and a `<name>_buckets`
  /// cumulative histogram family.
  void AddHistogram(const std::string& name, const std::string& help,
                    std::function<HistogramExposition()> value);

  /// Structured JSON-only blob (health transition log, recovery report,
  /// trace dumps). `json` must return a valid JSON value.
  void AddInfo(const std::string& name, std::function<std::string()> json);

  /// Prometheus text exposition format (version 0.0.4): every counter,
  /// gauge, and histogram, with `# HELP` / `# TYPE` headers.
  std::string ExposeText() const;

  /// The same metrics plus the info blobs, as one JSON object.
  std::string ExposeJson() const;

  /// Metric-name prefix, "oneedit_" by default.
  void set_prefix(std::string prefix) { prefix_ = std::move(prefix); }
  const std::string& prefix() const { return prefix_; }

  /// JSON string escaping (exposed for providers building info blobs).
  static std::string JsonEscape(const std::string& text);

 private:
  struct Counter {
    std::string name, help;
    std::function<uint64_t()> value;
  };
  struct Gauge {
    std::string name, help;
    std::function<double()> value;
  };
  struct LabeledGauge {
    std::string name, help;
    std::function<std::vector<std::pair<MetricLabel, double>>()> values;
  };
  struct LabeledCounter {
    std::string name, help;
    std::function<std::vector<std::pair<MetricLabel, uint64_t>>()> values;
  };
  struct HistogramFamily {
    std::string name, help;
    std::function<HistogramExposition()> value;
  };
  struct Info {
    std::string name;
    std::function<std::string()> json;
  };

  std::string prefix_ = "oneedit_";
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<LabeledGauge> labeled_gauges_;
  std::vector<LabeledCounter> labeled_counters_;
  std::vector<HistogramFamily> histograms_;
  std::vector<Info> infos_;
};

}  // namespace obs
}  // namespace oneedit

#endif  // ONEEDIT_OBS_METRICS_REGISTRY_H_
