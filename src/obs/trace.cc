#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>

namespace oneedit {
namespace obs {
namespace {

/// The calling thread's ambient trace (TraceScope installs/restores it).
thread_local TraceContext g_ambient;

std::string FormatMicros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceContext TraceRecorder::StartTrace() {
  TraceContext ctx;
  if (!enabled()) return ctx;
  ctx.trace_id = NextSpanId();
  ctx.parent_span = ctx.trace_id;  // children hang off the root span
  ctx.start_ns = TraceNowNanos();
  return ctx;
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  thread_local Ring* ring = nullptr;
  if (ring != nullptr) return ring;
  const size_t index = ring_count_.fetch_add(1, std::memory_order_relaxed);
  if (index < kMaxRings - 1) {
    ring = new Ring();
    rings_[index].store(ring, std::memory_order_release);
    return ring;
  }
  // More threads than private rings: every thread from the last slot on
  // shares one ring, CAS-registered so it is always visible to Drain.
  // Slots are seq-checked, so concurrent writers can only cause discarded
  // records, never corruption — and 256 tracing threads is far past any
  // deployment this serves.
  Ring* shared = rings_[kMaxRings - 1].load(std::memory_order_acquire);
  if (shared == nullptr) {
    Ring* fresh = new Ring();
    if (!rings_[kMaxRings - 1].compare_exchange_strong(
            shared, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      delete fresh;  // another thread registered first; share its ring
    } else {
      shared = fresh;
    }
  }
  ring = shared;
  return ring;
}

void TraceRecorder::Write(Ring* ring, uint64_t trace_id, uint64_t span_id,
                          uint64_t parent_id, const char* name,
                          uint64_t start_ns, uint64_t end_ns) {
  const uint64_t pos = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[pos % kRingCapacity];
  // Seqlock publish: odd while writing, even (and advanced) once stable.
  // Every field is an atomic, so concurrent drains are race-free; the seq
  // check makes them consistent. The odd marker must become visible before
  // any field store — a release *store* only orders what precedes it, so a
  // release fence (pairing with Drain's acquire fence) does that ordering.
  slot.seq.store(2 * pos + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_id.store(parent_id, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.seq.store(2 * pos + 2, std::memory_order_release);
  ring->head.store(pos + 1, std::memory_order_release);
}

void TraceRecorder::Record(const TraceContext& ctx, const char* name,
                           uint64_t start_ns, uint64_t end_ns) {
  if (!ctx.active()) return;
  Write(RingForThisThread(), ctx.trace_id, NextSpanId(), ctx.parent_span,
        name, start_ns, end_ns);
}

void TraceRecorder::RecordWithId(const TraceContext& ctx, uint64_t span_id,
                                 const char* name, uint64_t start_ns,
                                 uint64_t end_ns) {
  if (!ctx.active()) return;
  Write(RingForThisThread(), ctx.trace_id, span_id, ctx.parent_span, name,
        start_ns, end_ns);
}

void TraceRecorder::RecordRoot(const TraceContext& ctx, const char* name,
                               uint64_t end_ns) {
  if (!ctx.active()) return;
  Write(RingForThisThread(), ctx.trace_id, ctx.trace_id, 0, name,
        ctx.start_ns, end_ns);
}

std::vector<SpanRecord> TraceRecorder::Drain() const {
  std::vector<SpanRecord> out;
  const size_t rings = std::min(
      ring_count_.load(std::memory_order_acquire), kMaxRings);
  for (size_t r = 0; r < rings; ++r) {
    const Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (size_t i = 0; i < kRingCapacity; ++i) {
      const Slot& slot = ring->slots[i];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq == 0 || (seq & 1) != 0) continue;  // empty or mid-write
      SpanRecord record;
      record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      record.span_id = slot.span_id.load(std::memory_order_relaxed);
      record.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      record.name = slot.name.load(std::memory_order_relaxed);
      record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      record.end_ns = slot.end_ns.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq) continue;  // torn
      if (record.trace_id == 0) continue;
      out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::vector<TraceSummary> TraceRecorder::SlowestTraces(size_t n) const {
  std::unordered_map<uint64_t, TraceSummary> by_trace;
  for (const SpanRecord& record : Drain()) {
    TraceSummary& trace = by_trace[record.trace_id];
    trace.trace_id = record.trace_id;
    trace.spans.push_back(record);
  }
  std::vector<TraceSummary> traces;
  traces.reserve(by_trace.size());
  for (auto& [id, trace] : by_trace) {
    // Root span (span_id == trace_id) defines the end-to-end duration; if
    // it wrapped out of the ring, fall back to the span envelope.
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const SpanRecord& span : trace.spans) {
      if (span.span_id == trace.trace_id) {
        lo = span.start_ns;
        hi = span.end_ns;
        break;
      }
      lo = std::min(lo, span.start_ns);
      hi = std::max(hi, span.end_ns);
    }
    trace.duration_ns = hi >= lo ? hi - lo : 0;
    traces.push_back(std::move(trace));
  }
  std::sort(traces.begin(), traces.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return a.duration_ns > b.duration_ns;
            });
  if (traces.size() > n) traces.resize(n);
  return traces;
}

namespace {

void AppendSubtree(const TraceSummary& trace, uint64_t parent, int depth,
                   std::string* out) {
  for (const SpanRecord& span : trace.spans) {
    const bool is_root = span.span_id == trace.trace_id;
    if (is_root ? parent != 0 : span.parent_id != parent) continue;
    out->append(static_cast<size_t>(2 * depth + 2), ' ');
    *out += std::string(span.name) + " " + FormatMicros(span.duration_ns()) +
            " us\n";
    if (span.span_id != parent) {  // guard against self-parent cycles
      AppendSubtree(trace, span.span_id, depth + 1, out);
    }
  }
}

}  // namespace

std::string TraceRecorder::DumpTraces(size_t n) const {
  const std::vector<TraceSummary> traces = SlowestTraces(n);
  if (traces.empty()) {
    return "(no traces recorded" +
           std::string(enabled() ? "" : "; tracing is disabled") + ")\n";
  }
  std::string out;
  for (const TraceSummary& trace : traces) {
    out += "trace " + std::to_string(trace.trace_id) + " (" +
           FormatMicros(trace.duration_ns) + " us, " +
           std::to_string(trace.spans.size()) + " spans)\n";
    AppendSubtree(trace, 0, 0, &out);
    // Orphans (parent wrapped out of the ring) surface at the top level so
    // no recorded span is silently dropped from the dump.
    for (const SpanRecord& span : trace.spans) {
      if (span.span_id == trace.trace_id || span.parent_id == 0) continue;
      bool parent_present = false;
      for (const SpanRecord& other : trace.spans) {
        if (other.span_id == span.parent_id) {
          parent_present = true;
          break;
        }
      }
      if (!parent_present) {
        out += "  ~ " + std::string(span.name) + " " +
               FormatMicros(span.duration_ns()) + " us (orphan)\n";
      }
    }
  }
  return out;
}

void TraceRecorder::Clear() {
  const size_t rings = std::min(
      ring_count_.load(std::memory_order_acquire), kMaxRings);
  for (size_t r = 0; r < rings; ++r) {
    Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (size_t i = 0; i < kRingCapacity; ++i) {
      ring->slots[i].trace_id.store(0, std::memory_order_relaxed);
      ring->slots[i].seq.store(0, std::memory_order_release);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

TraceScope::TraceScope(const TraceContext& ctx) : saved_(g_ambient) {
  g_ambient = ctx;
}

TraceScope::~TraceScope() { g_ambient = saved_; }

const TraceContext& TraceScope::Current() { return g_ambient; }

void Span::Open(const TraceContext& ctx, const char* name) {
  if (!ctx.active() || !TraceRecorder::Global().enabled()) return;
  ctx_ = ctx;
  name_ = name;
  span_id_ = TraceRecorder::Global().NextSpanId();
  start_ns_ = TraceNowNanos();
}

Span::Span(const char* name) : ambient_(true) {
  Open(g_ambient, name);
  if (ctx_.active()) {
    // Children opened during this span's lifetime parent under it.
    saved_parent_ = g_ambient.parent_span;
    g_ambient.parent_span = span_id_;
  }
}

Span::Span(const TraceContext& ctx, const char* name) { Open(ctx, name); }

Span::~Span() {
  if (!ctx_.active()) return;
  if (ambient_) g_ambient.parent_span = saved_parent_;
  TraceRecorder::Global().RecordWithId(ctx_, span_id_, name_, start_ns_,
                                       TraceNowNanos());
}

}  // namespace obs
}  // namespace oneedit
