#include "obs/metrics_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace oneedit {
namespace obs {
namespace {

const char* StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 404:
      return "404 Not Found";
    case 503:
      return "503 Service Unavailable";
    default:
      return "500 Internal Server Error";
  }
}

}  // namespace

StatusOr<std::unique_ptr<MetricsServer>> MetricsServer::Start(
    uint16_t port, Handler handler) {
  if (!handler) return Status::InvalidArgument("metrics server needs a handler");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int reuse = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + error);
  }
  if (::listen(fd, 16) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + error);
  }
  return std::unique_ptr<MetricsServer>(
      new MetricsServer(fd, ntohs(bound.sin_port), std::move(handler)));
}

MetricsServer::MetricsServer(int listen_fd, uint16_t port, Handler handler)
    : listen_fd_(listen_fd), port_(port), handler_(std::move(handler)) {
  acceptor_ = std::thread(&MetricsServer::AcceptLoop, this);
}

MetricsServer::~MetricsServer() { Stop(); }

void MetricsServer::Stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::AcceptLoop() {
  for (;;) {
    // Poll with a short timeout so Stop() never waits on a blocked accept.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return;  // listener closed or broken
    }
    ServeOne(client);
    ::close(client);
  }
}

void MetricsServer::ServeOne(int client_fd) {
  // Requests are served inline on the acceptor thread, so a stalled client
  // must never block indefinitely: bound both directions with socket
  // timeouts, keeping the accept loop (and Stop()) live.
  timeval io_timeout{};
  io_timeout.tv_sec = 2;
  (void)::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                     sizeof(io_timeout));
  (void)::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                     sizeof(io_timeout));

  // HTTP/1.0, single read: a GET request line + headers comfortably fits.
  char buf[4096];
  const ssize_t got = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (got <= 0) return;
  buf[got] = '\0';

  // Parse "GET <path> HTTP/1.x".
  std::string path = "/";
  Response response;
  const char* line = buf;
  if (std::strncmp(line, "GET ", 4) == 0) {
    const char* start = line + 4;
    const char* end = std::strchr(start, ' ');
    if (end == nullptr) end = std::strchr(start, '\r');
    if (end != nullptr && end > start) {
      path.assign(start, static_cast<size_t>(end - start));
    }
    response = handler_(path);
  } else {
    response.status = 404;
    response.body = "only GET is served here\n";
  }

  std::string head = "HTTP/1.0 " + std::string(StatusLine(response.status)) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  // MSG_NOSIGNAL: a scraper that disconnects mid-response must surface as
  // EPIPE here, not raise SIGPIPE and kill the whole serving process.
  const auto write_all = [&](const char* data, size_t size) {
    size_t sent = 0;
    while (sent < size) {
      const ssize_t n =
          ::send(client_fd, data + sent, size - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  };
  write_all(head.data(), head.size());
  write_all(response.body.data(), response.body.size());
}

}  // namespace obs
}  // namespace oneedit
