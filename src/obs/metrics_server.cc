#include "obs/metrics_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"
#include "util/net.h"

namespace oneedit {
namespace obs {
namespace {

const char* StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 503:
      return "503 Service Unavailable";
    default:
      return "500 Internal Server Error";
  }
}

}  // namespace

StatusOr<std::unique_ptr<MetricsServer>> MetricsServer::Start(
    uint16_t port, Handler handler) {
  if (!handler) return Status::InvalidArgument("metrics server needs a handler");
  ONEEDIT_ASSIGN_OR_RETURN(const net::Listener listener,
                           net::ListenLoopback(port));
  return std::unique_ptr<MetricsServer>(
      new MetricsServer(listener.fd, listener.port, std::move(handler)));
}

MetricsServer::MetricsServer(int listen_fd, uint16_t port, Handler handler)
    : listen_fd_(listen_fd), port_(port), handler_(std::move(handler)) {
  acceptor_ = std::thread(&MetricsServer::AcceptLoop, this);
}

MetricsServer::~MetricsServer() { Stop(); }

void MetricsServer::Stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::AcceptLoop() {
  for (;;) {
    // Poll with a short timeout so Stop() never waits on a blocked accept.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return;  // listener closed or broken
    }
    ServeOne(client);
    ::close(client);
  }
}

void MetricsServer::ServeOne(int client_fd) {
  // Requests are served inline on the acceptor thread, so a stalled client
  // must never block indefinitely: bound both directions with socket
  // timeouts, keeping the accept loop (and Stop()) live.
  net::SetIoTimeouts(client_fd, /*seconds=*/2);

  // HTTP/1.0, single read: a GET request line + headers comfortably fits.
  char buf[4096];
  const ssize_t got = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (got <= 0) return;
  buf[got] = '\0';

  // Parse "GET <path> HTTP/1.x".
  std::string path = "/";
  Response response;
  const char* line = buf;
  if (std::strncmp(line, "GET ", 4) == 0) {
    const char* start = line + 4;
    const char* end = std::strchr(start, ' ');
    if (end == nullptr) end = std::strchr(start, '\r');
    if (end != nullptr && end > start) {
      path.assign(start, static_cast<size_t>(end - start));
    }
    response = handler_(path);
  } else {
    response.status = 404;
    response.body = "only GET is served here\n";
  }

  std::string head = "HTTP/1.0 " + std::string(StatusLine(response.status)) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  // SendAll's MSG_NOSIGNAL: a scraper that disconnects mid-response must
  // surface as EPIPE here, not raise SIGPIPE and kill the serving process.
  if (net::SendAll(client_fd, head).ok()) {
    (void)net::SendAll(client_fd, response.body);
  }
}

}  // namespace obs
}  // namespace oneedit
