#ifndef ONEEDIT_OBS_METRICS_SERVER_H_
#define ONEEDIT_OBS_METRICS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "util/statusor.h"

namespace oneedit {
namespace obs {

/// A deliberately tiny blocking HTTP/1.0 listener for metrics scrapes and
/// admin peeks — one acceptor thread, one connection at a time, request
/// fully read then response fully written then closed. This is an ops
/// sidecar for `curl`/Prometheus, not a web server: it binds loopback only
/// and never touches the serving data path (handlers sample atomics and
/// take short internal locks).
class MetricsServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::string body;
  };

  /// Routes a request path (query string included, e.g. "/traces?n=5") to a
  /// response. Called on the server thread; must be thread-safe.
  using Handler = std::function<Response(const std::string& path)>;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back via
  /// port()) and starts the acceptor thread.
  static StatusOr<std::unique_ptr<MetricsServer>> Start(uint16_t port,
                                                        Handler handler);

  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Stops accepting and joins the acceptor thread. Idempotent.
  void Stop();

  /// The actually bound port.
  uint16_t port() const { return port_; }

  /// "127.0.0.1:<port>".
  std::string address() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  MetricsServer(int listen_fd, uint16_t port, Handler handler);

  void AcceptLoop();
  void ServeOne(int client_fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
};

}  // namespace obs
}  // namespace oneedit

#endif  // ONEEDIT_OBS_METRICS_SERVER_H_
