#include "obs/metrics_registry.h"

#include <cmath>
#include <cstdio>

namespace oneedit {
namespace obs {
namespace {

std::string FormatDouble(double value) {
  // Prometheus text-format spellings for non-finite values (%g would print
  // lowercase "nan"/"inf", which scrapers reject).
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // Integral values print without a fraction so counters stay grep-able.
  // (The magnitude guard keeps the long long cast defined.)
  if (value >= -9.0e18 && value <= 9.0e18 &&
      value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

/// JSON has no literal for NaN/Inf; a non-finite gauge must not be allowed
/// to corrupt the whole /metrics.json document, so it becomes null.
std::string FormatDoubleJson(double value) {
  if (!std::isfinite(value)) return "null";
  return FormatDouble(value);
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string LabelEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 const std::string& help,
                                 std::function<uint64_t()> value) {
  counters_.push_back(Counter{name, help, std::move(value)});
}

void MetricsRegistry::AddGauge(const std::string& name,
                               const std::string& help,
                               std::function<double()> value) {
  gauges_.push_back(Gauge{name, help, std::move(value)});
}

void MetricsRegistry::AddLabeledGauge(
    const std::string& name, const std::string& help,
    std::function<std::vector<std::pair<MetricLabel, double>>()> values) {
  labeled_gauges_.push_back(LabeledGauge{name, help, std::move(values)});
}

void MetricsRegistry::AddLabeledCounter(
    const std::string& name, const std::string& help,
    std::function<std::vector<std::pair<MetricLabel, uint64_t>>()> values) {
  labeled_counters_.push_back(LabeledCounter{name, help, std::move(values)});
}

void MetricsRegistry::AddHistogram(
    const std::string& name, const std::string& help,
    std::function<HistogramExposition()> value) {
  histograms_.push_back(HistogramFamily{name, help, std::move(value)});
}

void MetricsRegistry::AddInfo(const std::string& name,
                              std::function<std::string()> json) {
  infos_.push_back(Info{name, std::move(json)});
}

std::string MetricsRegistry::ExposeText() const {
  std::string out;
  for (const Counter& counter : counters_) {
    const std::string full = prefix_ + counter.name + "_total";
    out += "# HELP " + full + " " + counter.help + "\n";
    out += "# TYPE " + full + " counter\n";
    out += full + " " + std::to_string(counter.value()) + "\n";
  }
  for (const Gauge& gauge : gauges_) {
    const std::string full = prefix_ + gauge.name;
    out += "# HELP " + full + " " + gauge.help + "\n";
    out += "# TYPE " + full + " gauge\n";
    out += full + " " + FormatDouble(gauge.value()) + "\n";
  }
  for (const LabeledGauge& family : labeled_gauges_) {
    const std::string full = prefix_ + family.name;
    out += "# HELP " + full + " " + family.help + "\n";
    out += "# TYPE " + full + " gauge\n";
    for (const auto& [label, value] : family.values()) {
      out += full + "{" + label.key + "=\"" + LabelEscape(label.value) +
             "\"} " + FormatDouble(value) + "\n";
    }
  }
  for (const LabeledCounter& family : labeled_counters_) {
    const std::string full = prefix_ + family.name + "_total";
    out += "# HELP " + full + " " + family.help + "\n";
    out += "# TYPE " + full + " counter\n";
    for (const auto& [label, value] : family.values()) {
      out += full + "{" + label.key + "=\"" + LabelEscape(label.value) +
             "\"} " + std::to_string(value) + "\n";
    }
  }
  for (const HistogramFamily& family : histograms_) {
    const HistogramExposition histogram = family.value();
    const std::string full = prefix_ + family.name;
    // Summary family: exact-to-bucket quantiles, plus _sum/_count.
    out += "# HELP " + full + " " + family.help + "\n";
    out += "# TYPE " + full + " summary\n";
    out += full + "{quantile=\"0.5\"} " + std::to_string(histogram.p50) + "\n";
    out += full + "{quantile=\"0.95\"} " + std::to_string(histogram.p95) +
           "\n";
    out += full + "{quantile=\"0.99\"} " + std::to_string(histogram.p99) +
           "\n";
    out += full + "_sum " + std::to_string(histogram.sum) + "\n";
    out += full + "_count " + std::to_string(histogram.count) + "\n";
    out += "# HELP " + full + "_max " + family.help + " (peak)\n";
    out += "# TYPE " + full + "_max gauge\n";
    out += full + "_max " + std::to_string(histogram.max) + "\n";
    // Raw exponential buckets as a proper histogram family, so a real
    // Prometheus can aggregate quantiles across instances.
    out += "# HELP " + full + "_buckets " + family.help +
           " (exponential buckets)\n";
    out += "# TYPE " + full + "_buckets histogram\n";
    for (const auto& [le, cumulative] : histogram.buckets) {
      out += full + "_buckets_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += full + "_buckets_bucket{le=\"+Inf\"} " +
           std::to_string(histogram.count) + "\n";
    out += full + "_buckets_sum " + std::to_string(histogram.sum) + "\n";
    out += full + "_buckets_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ExposeJson() const {
  std::string out = "{";
  bool first = true;
  const auto key = [&](const std::string& name) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":";
  };
  out += "\"counters\":{";
  for (const Counter& counter : counters_) {
    key(counter.name);
    out += std::to_string(counter.value());
  }
  for (const LabeledCounter& family : labeled_counters_) {
    for (const auto& [label, value] : family.values()) {
      key(family.name + "{" + label.key + "=" + label.value + "}");
      out += std::to_string(value);
    }
  }
  out += "},";
  first = true;
  out += "\"gauges\":{";
  for (const Gauge& gauge : gauges_) {
    key(gauge.name);
    out += FormatDoubleJson(gauge.value());
  }
  for (const LabeledGauge& family : labeled_gauges_) {
    for (const auto& [label, value] : family.values()) {
      key(family.name + "{" + label.key + "=" + label.value + "}");
      out += FormatDoubleJson(value);
    }
  }
  out += "},";
  first = true;
  out += "\"histograms\":{";
  for (const HistogramFamily& family : histograms_) {
    const HistogramExposition histogram = family.value();
    key(family.name);
    out += "{\"count\":" + std::to_string(histogram.count) +
           ",\"sum\":" + std::to_string(histogram.sum) +
           ",\"max\":" + std::to_string(histogram.max) +
           ",\"p50\":" + std::to_string(histogram.p50) +
           ",\"p95\":" + std::to_string(histogram.p95) +
           ",\"p99\":" + std::to_string(histogram.p99) + "}";
  }
  out += "}";
  for (const Info& info : infos_) {
    out += ",\"" + JsonEscape(info.name) + "\":" + info.json();
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace oneedit
