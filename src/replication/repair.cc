#include "replication/repair.h"

#include <unistd.h>

#include <string>

namespace oneedit {
namespace replication {

StatusOr<RepairReply> FetchFromPeer(uint16_t peer_port,
                                    const FetchRangeRequest& request,
                                    net::Net* net, int io_timeout_seconds) {
  net::Net* n = net != nullptr ? net : net::Net::Default();
  ONEEDIT_ASSIGN_OR_RETURN(const int fd, n->Connect(peer_port));
  n->IoTimeouts(fd, io_timeout_seconds);
  StatusOr<RepairReply> result = [&]() -> StatusOr<RepairReply> {
    ONEEDIT_RETURN_IF_ERROR(
        SendFrame(fd, EncodeFetchRange(request), n));
    ONEEDIT_ASSIGN_OR_RETURN(const Message message, RecvMessage(fd, n));
    if (message.type == MessageType::kReject) {
      return Status::FailedPrecondition(
          "repair fetch fenced by peer (term " +
          std::to_string(message.reject.term) + ")");
    }
    if (message.type != MessageType::kRepair ||
        message.repair.target != request.target) {
      return Status::Corruption("unexpected reply to repair fetch");
    }
    // Never splice in a deposed peer's bytes: a stale-term reply may carry
    // an un-reconciled diverged suffix.
    if (message.repair.term < request.term) {
      return Status::FailedPrecondition(
          "repair reply from stale term " +
          std::to_string(message.repair.term));
    }
    return message.repair;
  }();
  ::close(fd);
  return result;
}

}  // namespace replication
}  // namespace oneedit
