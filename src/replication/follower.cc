#include "replication/follower.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/net.h"

namespace oneedit {
namespace replication {

std::string FollowerStateName(FollowerState state) {
  switch (state) {
    case FollowerState::kConnecting:
      return "connecting";
    case FollowerState::kInstallingSnapshot:
      return "installing_snapshot";
    case FollowerState::kTailing:
      return "tailing";
    case FollowerState::kCaughtUp:
      return "caught_up";
    case FollowerState::kStopped:
      return "stopped";
  }
  return "unknown";
}

std::unique_ptr<Follower> Follower::Start(const FollowerOptions& options,
                                          FollowerHooks hooks,
                                          Statistics* stats) {
  std::unique_ptr<Follower> follower(
      new Follower(options, std::move(hooks), stats));
  follower->tailer_ = std::thread(&Follower::TailLoop, follower.get());
  return follower;
}

Follower::Follower(const FollowerOptions& options, FollowerHooks hooks,
                   Statistics* stats)
    : options_(options), hooks_(std::move(hooks)), stats_(stats) {}

Follower::~Follower() { Stop(); }

void Follower::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.exchange(true)) {
      // A concurrent Stop is (or was) already tearing down; just join.
    }
  }
  wake_.notify_all();
  if (tailer_.joinable()) tailer_.join();
  state_.store(FollowerState::kStopped, std::memory_order_release);
}

uint64_t Follower::lag_records() const {
  const uint64_t committed = committed_seen_.load(std::memory_order_acquire);
  const uint64_t applied = hooks_.applied_sequence();
  return committed > applied ? committed - applied : 0;
}

uint64_t Follower::lag_batches() const {
  const uint64_t pending = pending_batches_.load(std::memory_order_acquire);
  return pending > 0 ? pending : (lag_records() > 0 ? 1 : 0);
}

double Follower::lag_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!behind_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       behind_since_)
      .count();
}

void Follower::ObserveLag(uint64_t committed, uint64_t applied) {
  committed_seen_.store(committed, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  if (committed > applied) {
    if (!behind_) {
      behind_ = true;
      behind_since_ = std::chrono::steady_clock::now();
    }
  } else {
    behind_ = false;
  }
}

void Follower::TailLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    state_.store(FollowerState::kConnecting, std::memory_order_release);
    StatusOr<int> fd = net::ConnectLoopback(options_.primary_port);
    if (!fd.ok()) {
      if (stats_ != nullptr) stats_->Add(Ticker::kReplReconnects);
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait_for(lock, options_.reconnect_backoff,
                     [this] { return stopping_.load(); });
      continue;
    }
    net::SetIoTimeouts(*fd, options_.io_timeout_seconds);
    RunSession(*fd);
    ::close(*fd);
    if (!stopping_.load(std::memory_order_acquire)) {
      // The primary went away (crash, restart, or our own timeout); keep
      // re-dialing — a promoted or rebooted primary may come back.
      if (stats_ != nullptr) stats_->Add(Ticker::kReplReconnects);
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait_for(lock, options_.reconnect_backoff,
                     [this] { return stopping_.load(); });
    }
  }
  state_.store(FollowerState::kStopped, std::memory_order_release);
}

void Follower::RunSession(int fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    PollRequest poll;
    poll.applied_sequence = hooks_.applied_sequence();
    poll.from_sequence = poll.applied_sequence + 1;
    if (!SendFrame(fd, EncodePoll(poll)).ok()) return;
    StatusOr<Message> message = RecvMessage(fd);
    if (!message.ok()) return;

    bool behind = false;
    switch (message->type) {
      case MessageType::kBatches: {
        state_.store(FollowerState::kTailing, std::memory_order_release);
        pending_batches_.store(message->batches.batches.size(),
                               std::memory_order_release);
        for (const ShippedBatch& batch : message->batches.batches) {
          if (stopping_.load(std::memory_order_acquire)) return;
          const Status applied = hooks_.apply_batch(batch);
          if (!applied.ok()) {
            // A replica that cannot journal or apply must not keep acking:
            // stop tailing and surface the wedge via state + logs.
            ONEEDIT_LOG(Error)
                << "follower failed to apply shipped batch ["
                << batch.first_sequence << ", " << batch.last_sequence
                << "]: " << applied.ToString();
            stopping_.store(true, std::memory_order_release);
            return;
          }
          pending_batches_.fetch_sub(1, std::memory_order_acq_rel);
          if (stats_ != nullptr) {
            stats_->Add(Ticker::kReplBatchesApplied);
            stats_->Add(Ticker::kReplRecordsApplied, batch.records);
          }
        }
        ObserveLag(message->batches.committed_sequence,
                   hooks_.applied_sequence());
        // There may be more committed work than one reply carries; poll
        // again immediately while behind.
        behind = message->batches.committed_sequence >
                 hooks_.applied_sequence();
        break;
      }
      case MessageType::kSnapshot: {
        state_.store(FollowerState::kInstallingSnapshot,
                     std::memory_order_release);
        const Status installed = hooks_.install_snapshot(
            message->snapshot.checkpoint_sequence, message->snapshot.bytes);
        if (!installed.ok()) {
          ONEEDIT_LOG(Error) << "follower failed to install snapshot at "
                             << message->snapshot.checkpoint_sequence << ": "
                             << installed.ToString();
          stopping_.store(true, std::memory_order_release);
          return;
        }
        if (stats_ != nullptr) {
          stats_->Add(Ticker::kReplSnapshotsInstalled);
        }
        ObserveLag(
            std::max(committed_seen_.load(std::memory_order_acquire),
                     message->snapshot.checkpoint_sequence),
            hooks_.applied_sequence());
        behind = true;  // tail whatever the WAL holds past the snapshot
        break;
      }
      case MessageType::kHeartbeat:
        ObserveLag(message->heartbeat.committed_sequence,
                   hooks_.applied_sequence());
        behind = message->heartbeat.committed_sequence >
                 hooks_.applied_sequence();
        break;
      case MessageType::kPoll:
        return;  // protocol violation; drop the connection
    }

    if (!behind) {
      state_.store(FollowerState::kCaughtUp, std::memory_order_release);
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait_for(lock, options_.poll_interval,
                     [this] { return stopping_.load(); });
    }
  }
}

}  // namespace replication
}  // namespace oneedit
