#include "replication/follower.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <random>
#include <utility>

#include "util/logging.h"
#include "util/net.h"

namespace oneedit {
namespace replication {

std::string FollowerStateName(FollowerState state) {
  switch (state) {
    case FollowerState::kConnecting:
      return "connecting";
    case FollowerState::kInstallingSnapshot:
      return "installing_snapshot";
    case FollowerState::kTailing:
      return "tailing";
    case FollowerState::kCaughtUp:
      return "caught_up";
    case FollowerState::kStopped:
      return "stopped";
  }
  return "unknown";
}

std::unique_ptr<Follower> Follower::Start(const FollowerOptions& options,
                                          FollowerHooks hooks,
                                          Statistics* stats) {
  std::unique_ptr<Follower> follower(
      new Follower(options, std::move(hooks), stats));
  follower->tailer_ = std::thread(&Follower::TailLoop, follower.get());
  return follower;
}

Follower::Follower(const FollowerOptions& options, FollowerHooks hooks,
                   Statistics* stats)
    : options_(options), hooks_(std::move(hooks)), stats_(stats) {}

Follower::~Follower() { Stop(); }

void Follower::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.exchange(true)) {
      // A concurrent Stop is (or was) already tearing down; just join.
    }
  }
  wake_.notify_all();
  if (tailer_.joinable()) tailer_.join();
  state_.store(FollowerState::kStopped, std::memory_order_release);
}

uint64_t Follower::lag_records() const {
  const uint64_t committed = committed_seen_.load(std::memory_order_acquire);
  const uint64_t applied = hooks_.applied_sequence();
  return committed > applied ? committed - applied : 0;
}

uint64_t Follower::lag_batches() const {
  const uint64_t pending = pending_batches_.load(std::memory_order_acquire);
  return pending > 0 ? pending : (lag_records() > 0 ? 1 : 0);
}

double Follower::lag_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!behind_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       behind_since_)
      .count();
}

void Follower::ObserveLag(uint64_t committed, uint64_t applied) {
  committed_seen_.store(committed, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  if (committed > applied) {
    if (!behind_) {
      behind_ = true;
      behind_since_ = std::chrono::steady_clock::now();
    }
  } else {
    behind_ = false;
  }
}

void Follower::TailLoop() {
  net::Net* net = options_.net != nullptr ? options_.net : net::Net::Default();
  // Jittered exponential backoff: doubling per consecutive failure keeps a
  // reset storm from busy-spinning; jitter keeps a fleet of followers from
  // re-dialing in lockstep. Deterministic for a fixed seed.
  std::mt19937_64 rng(options_.backoff_seed != 0
                          ? options_.backoff_seed
                          : 0x9e3779b97f4a7c15ull ^ options_.primary_port);
  uint32_t consecutive_failures = 0;
  const auto backoff = [&] {
    const uint64_t base = static_cast<uint64_t>(
        std::max<int64_t>(1, options_.reconnect_backoff.count()));
    const uint64_t cap = std::max(
        base,
        static_cast<uint64_t>(
            std::max<int64_t>(1, options_.reconnect_backoff_cap.count())));
    const uint32_t shift = std::min(consecutive_failures, 10u);
    const uint64_t ceiling = std::min(cap, base << shift);
    // Uniform in [ceiling/2, ceiling]: never collapses to zero, never
    // exceeds the ladder rung.
    const uint64_t delay = ceiling / 2 + rng() % (ceiling - ceiling / 2 + 1);
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait_for(lock, std::chrono::milliseconds(delay),
                   [this] { return stopping_.load(); });
  };
  while (!stopping_.load(std::memory_order_acquire)) {
    state_.store(FollowerState::kConnecting, std::memory_order_release);
    StatusOr<int> fd = net->Connect(options_.primary_port);
    if (!fd.ok()) {
      ++consecutive_failures;
      if (stats_ != nullptr) stats_->Add(Ticker::kReplReconnects);
      backoff();
      continue;
    }
    net->IoTimeouts(*fd, options_.io_timeout_seconds);
    const bool progressed = RunSession(*fd, net);
    ::close(*fd);
    if (progressed) {
      consecutive_failures = 0;
    } else {
      ++consecutive_failures;
    }
    if (!stopping_.load(std::memory_order_acquire)) {
      // The primary went away (crash, restart, or our own timeout); keep
      // re-dialing — a promoted or rebooted primary may come back.
      if (stats_ != nullptr) stats_->Add(Ticker::kReplReconnects);
      backoff();
    }
  }
  state_.store(FollowerState::kStopped, std::memory_order_release);
}

bool Follower::RunSession(int fd, net::Net* net) {
  bool progressed = false;
  while (!stopping_.load(std::memory_order_acquire)) {
    PollRequest poll;
    poll.applied_sequence = hooks_.applied_sequence();
    poll.from_sequence = poll.applied_sequence + 1;
    poll.term = hooks_.current_term != nullptr ? hooks_.current_term() : 0;
    poll.applied_term =
        hooks_.applied_term != nullptr ? hooks_.applied_term() : 0;
    if (!SendFrame(fd, EncodePoll(poll), net).ok()) return progressed;
    StatusOr<Message> message = RecvMessage(fd, net);
    if (!message.ok()) return progressed;
    progressed = true;

    // Fence on the reply's term stamp before trusting any of its data.
    uint64_t reply_term = 0;
    switch (message->type) {
      case MessageType::kBatches:
        reply_term = message->batches.term;
        break;
      case MessageType::kSnapshot:
        reply_term = message->snapshot.term;
        break;
      case MessageType::kHeartbeat:
        reply_term = message->heartbeat.term;
        break;
      case MessageType::kReject:
        reply_term = message->reject.term;
        break;
      case MessageType::kPoll:
      case MessageType::kFetchRange:
      case MessageType::kRepair:
        return progressed;  // protocol violation; drop the connection
    }
    if (reply_term > poll.term) {
      if (hooks_.adopt_term != nullptr) hooks_.adopt_term(reply_term);
    } else if (reply_term < poll.term) {
      // A deposed primary still answering under its stale term. Journaling
      // its records would fork our history; drop the connection instead
      // (the owner re-points us at the new primary).
      if (stats_ != nullptr) stats_->Add(Ticker::kReplTermRejections);
      return progressed;
    }

    if (message->type == MessageType::kReject) {
      if (message->reject.reason == RejectReason::kStaleTerm) {
        // Adopted the higher term above; re-poll with it right away.
        continue;
      }
      // kDeposed / kTooManyFollowers: this server will not serve us now;
      // disconnect and let the backoff ladder pace the retry.
      return progressed;
    }

    bool behind = false;
    switch (message->type) {
      case MessageType::kBatches: {
        state_.store(FollowerState::kTailing, std::memory_order_release);
        pending_batches_.store(message->batches.batches.size(),
                               std::memory_order_release);
        for (const ShippedBatch& batch : message->batches.batches) {
          if (stopping_.load(std::memory_order_acquire)) return progressed;
          const Status applied = hooks_.apply_batch(batch);
          if (!applied.ok()) {
            // A replica that cannot journal or apply must not keep acking:
            // stop tailing and surface the wedge via state + logs.
            ONEEDIT_LOG(Error)
                << "follower failed to apply shipped batch ["
                << batch.first_sequence << ", " << batch.last_sequence
                << "]: " << applied.ToString();
            stopping_.store(true, std::memory_order_release);
            return progressed;
          }
          pending_batches_.fetch_sub(1, std::memory_order_acq_rel);
          if (stats_ != nullptr) {
            stats_->Add(Ticker::kReplBatchesApplied);
            stats_->Add(Ticker::kReplRecordsApplied, batch.records);
          }
        }
        ObserveLag(message->batches.committed_sequence,
                   hooks_.applied_sequence());
        // There may be more committed work than one reply carries; poll
        // again immediately while behind.
        behind = message->batches.committed_sequence >
                 hooks_.applied_sequence();
        break;
      }
      case MessageType::kSnapshot: {
        state_.store(FollowerState::kInstallingSnapshot,
                     std::memory_order_release);
        const Status installed = hooks_.install_snapshot(
            message->snapshot.checkpoint_sequence, message->snapshot.bytes);
        if (!installed.ok()) {
          ONEEDIT_LOG(Error) << "follower failed to install snapshot at "
                             << message->snapshot.checkpoint_sequence << ": "
                             << installed.ToString();
          stopping_.store(true, std::memory_order_release);
          return progressed;
        }
        if (stats_ != nullptr) {
          stats_->Add(Ticker::kReplSnapshotsInstalled);
        }
        if (message->snapshot.divergence != 0 &&
            hooks_.on_divergence != nullptr) {
          // The install just truncated a suffix journaled under a deposed
          // term — reconciliation, not a routine catch-up.
          hooks_.on_divergence(message->snapshot.checkpoint_sequence);
        }
        ObserveLag(
            std::max(committed_seen_.load(std::memory_order_acquire),
                     message->snapshot.checkpoint_sequence),
            hooks_.applied_sequence());
        behind = true;  // tail whatever the WAL holds past the snapshot
        break;
      }
      case MessageType::kHeartbeat:
        ObserveLag(message->heartbeat.committed_sequence,
                   hooks_.applied_sequence());
        behind = message->heartbeat.committed_sequence >
                 hooks_.applied_sequence();
        break;
      case MessageType::kPoll:
      case MessageType::kReject:
      case MessageType::kFetchRange:
      case MessageType::kRepair:
        return progressed;  // handled above; unreachable
    }

    if (!behind) {
      state_.store(FollowerState::kCaughtUp, std::memory_order_release);
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait_for(lock, options_.poll_interval,
                     [this] { return stopping_.load(); });
    }
  }
  return progressed;
}

}  // namespace replication
}  // namespace oneedit
