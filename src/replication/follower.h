#ifndef ONEEDIT_REPLICATION_FOLLOWER_H_
#define ONEEDIT_REPLICATION_FOLLOWER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/statistics.h"
#include "replication/wire.h"
#include "util/net.h"
#include "util/status.h"

namespace oneedit {
namespace replication {

/// Where a follower's tailer is in its lifecycle — exported as a one-hot
/// gauge so dashboards can see a replica stuck installing or disconnected.
enum class FollowerState {
  kConnecting,          ///< no live connection; dialing / backing off
  kInstallingSnapshot,  ///< a shipped checkpoint image is being installed
  kTailing,             ///< applying shipped batches, behind the commit point
  kCaughtUp,            ///< applied == primary's committed sequence
  kStopped,             ///< Stop() or Promote() ended the tail loop
};

std::string FollowerStateName(FollowerState state);

struct FollowerOptions {
  /// Primary's replication port (loopback).
  uint16_t primary_port = 0;
  /// Idle poll cadence once caught up; behind, the follower polls
  /// immediately after each applied reply.
  std::chrono::milliseconds poll_interval{20};
  /// Base reconnect backoff after a dropped/refused connection. Doubles
  /// per consecutive failure (with jitter) up to reconnect_backoff_cap, so
  /// a connection-reset storm cannot busy-spin the tail loop; any session
  /// that receives a message resets the ladder.
  std::chrono::milliseconds reconnect_backoff{50};
  /// Upper bound on the exponential backoff.
  std::chrono::milliseconds reconnect_backoff_cap{2000};
  /// Seed for the backoff jitter; 0 derives one from primary_port, so two
  /// followers of the same primary still diverge deterministically.
  uint64_t backoff_seed = 0;
  /// SO_RCVTIMEO/SO_SNDTIMEO on the primary connection.
  int io_timeout_seconds = 5;
  /// Network seam; Net::Default() when null.
  net::Net* net = nullptr;
};

/// How the tailer hands work to its owner (the serving layer): the
/// replication library never touches system state directly, so these hooks
/// journal + apply under whatever locking the owner requires.
struct FollowerHooks {
  /// Journal the batch's raw frames (durably, BEFORE applying) and apply
  /// its records. Must leave applied_sequence() >= batch.last_sequence on
  /// success. A failure stops the tailer (the replica is wedged, not
  /// silently skipping).
  std::function<Status(const ShippedBatch& batch)> apply_batch;
  /// Install a full checkpoint image (empty/far-behind catch-up).
  std::function<Status(uint64_t checkpoint_sequence,
                       const std::string& bytes)>
      install_snapshot;
  /// Highest locally applied (and journaled) sequence — sent to the
  /// primary as the ack its quorum wait watches.
  std::function<uint64_t()> applied_sequence;
  /// Highest primary term observed locally; stamped into every poll. A
  /// primary answering with a lower term is deposed and its data dropped.
  /// Optional (0 when unset) for owners that predate terms.
  std::function<uint64_t()> current_term;
  /// Term of the last locally applied record — the divergence probe the
  /// primary compares against its own term start.
  std::function<uint64_t()> applied_term;
  /// Raise the locally observed term (a reply or rejection carried a
  /// higher one). Optional.
  std::function<void(uint64_t term)> adopt_term;
  /// A divergence snapshot is about to replace this replica's journal: its
  /// tail was written under a deposed term and is being truncated. Called
  /// after the install succeeds, with the image's checkpoint sequence.
  std::function<void(uint64_t checkpoint_sequence)> on_divergence;
};

/// The follower's half of WAL shipping: a tail loop that polls the primary,
/// journals + applies whatever comes back through the owner's hooks, and
/// tracks staleness (lag in records, batches and seconds) for bounded-
/// staleness reads and the metrics surface.
class Follower {
 public:
  /// Starts the tail thread. Hooks must outlive the follower.
  static std::unique_ptr<Follower> Start(const FollowerOptions& options,
                                         FollowerHooks hooks,
                                         Statistics* stats);

  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Joins the tail loop (after its current apply finishes). Idempotent.
  /// Promotion calls this first: no shipped batch is mid-apply when the
  /// new primary seals its WAL.
  void Stop();

  FollowerState state() const {
    return state_.load(std::memory_order_acquire);
  }

  /// Primary's committed sequence as of the last reply (0 before one).
  uint64_t committed_seen() const {
    return committed_seen_.load(std::memory_order_acquire);
  }

  /// Records known committed on the primary but not yet applied here.
  uint64_t lag_records() const;

  /// Shipped-but-unapplied batches, plus one when the primary's commit
  /// point is known to be ahead of the local applied sequence — 0 exactly
  /// when the replica serves the primary's latest acknowledged state.
  uint64_t lag_batches() const;

  /// Age of the oldest known-committed-but-unapplied sequence; 0 when
  /// caught up.
  double lag_seconds() const;

 private:
  Follower(const FollowerOptions& options, FollowerHooks hooks,
           Statistics* stats);

  void TailLoop();

  /// One connect-poll-apply session; returns when the connection drops or
  /// the follower stops. True if at least one reply was received — the
  /// signal that resets the reconnect-backoff ladder.
  bool RunSession(int fd, net::Net* net);

  /// Updates lag bookkeeping from the latest (committed, applied) pair.
  void ObserveLag(uint64_t committed, uint64_t applied);

  FollowerOptions options_;
  FollowerHooks hooks_;
  Statistics* stats_;

  std::atomic<FollowerState> state_{FollowerState::kConnecting};
  std::atomic<uint64_t> committed_seen_{0};
  std::atomic<uint64_t> pending_batches_{0};
  std::atomic<bool> stopping_{false};

  /// Guards the lag clock (behind_since_) and the stop CV.
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool behind_ = false;
  std::chrono::steady_clock::time_point behind_since_{};

  std::thread tailer_;
};

}  // namespace replication
}  // namespace oneedit

#endif  // ONEEDIT_REPLICATION_FOLLOWER_H_
