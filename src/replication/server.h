#ifndef ONEEDIT_REPLICATION_SERVER_H_
#define ONEEDIT_REPLICATION_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/statistics.h"
#include "durability/manager.h"
#include "replication/wire.h"
#include "util/net.h"

namespace oneedit {
namespace replication {

struct ReplicationServerOptions {
  /// Loopback port to listen on; 0 picks an ephemeral one (read it back
  /// via port()).
  uint16_t port = 0;
  /// Most batches shipped per poll round trip (bounds reply size and the
  /// follower's per-cycle apply work).
  size_t max_batches_per_poll = 32;
  /// SO_RCVTIMEO/SO_SNDTIMEO on follower connections: a wedged follower
  /// times out and is dropped instead of pinning its handler thread.
  int io_timeout_seconds = 5;
  /// Concurrent-follower cap; a connection past it gets a typed
  /// kTooManyFollowers rejection instead of a silently pinned thread.
  size_t max_followers = 64;
  /// Network seam; Net::Default() when null. Chaos tests interpose a
  /// FaultInjectingNet here.
  net::Net* net = nullptr;
  /// Fencing callback: invoked exactly once, with the higher term, when a
  /// poll stamped with a term above ours arrives — some other node won an
  /// election, so this (deposed) primary must shed writes. Called from a
  /// handler thread; must not re-enter the server.
  std::function<void(uint64_t)> on_deposed;
};

/// What a quorum wait concluded (WaitForAcks).
enum class AckWait {
  kQuorum,   ///< enough followers acked the sequence in time
  kTimeout,  ///< the timeout elapsed first — the caller's AckPolicy decides
  kStopped,  ///< the server is shutting down; no verdict
};

/// The primary's half of WAL shipping (docs/replication.md): accepts
/// follower connections, answers each kPoll with committed WAL batches read
/// through an EditWal::Cursor, and falls back to shipping the whole
/// checkpoint image when the follower's position was rotated out of the
/// WAL. Tracks every follower's acked (applied) sequence so the serving
/// writer can block acknowledgement on a replication quorum.
///
/// Threading: one acceptor thread plus one thread per follower connection.
/// Handler threads touch only the DurabilityManager's atomic counters and
/// on-disk files (WAL via cursor, checkpoint via whole-file read) — never
/// the system state — so they need no coordination with the serving
/// writer's locks.
class ReplicationServer {
 public:
  /// Binds and starts the acceptor. `durability` and `stats` must outlive
  /// the server; `stats` may be null.
  static StatusOr<std::unique_ptr<ReplicationServer>> Start(
      durability::DurabilityManager* durability, Statistics* stats,
      const ReplicationServerOptions& options = {});

  ~ReplicationServer();

  ReplicationServer(const ReplicationServer&) = delete;
  ReplicationServer& operator=(const ReplicationServer&) = delete;

  /// Stops accepting, disconnects every follower, joins all threads.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  size_t followers_connected() const;

  /// Highest sequence every connected follower has acked (0 when none are
  /// connected) — the replicated-everywhere watermark.
  uint64_t min_follower_applied() const;

  /// Blocks until at least `replicas` followers have acked a sequence >=
  /// `sequence`, the `timeout` elapses, or the server stops. The serving
  /// writer calls this after applying a batch; what a kTimeout means for
  /// the client is the caller's AckPolicy decision, not ours.
  AckWait WaitForAcks(uint64_t sequence, size_t replicas,
                      std::chrono::milliseconds timeout);

  /// True once a higher-term poll deposed this server (it answers
  /// everything with kReject{kDeposed} from then on).
  bool deposed() const { return deposed_.load(); }

  /// Live handler threads, including finished-but-unreaped ones (reaped on
  /// the next accept). Exposed so tests can assert reconnect storms don't
  /// leak threads.
  size_t handler_threads() const;

 private:
  ReplicationServer(durability::DurabilityManager* durability,
                    Statistics* stats,
                    const ReplicationServerOptions& options);

  net::Net* net_impl() const {
    return options_.net != nullptr ? options_.net : net::Net::Default();
  }

  void AcceptLoop();
  void ServeFollower(int fd, std::shared_ptr<std::atomic<bool>> done);
  /// Joins handler threads that have finished serving their connection.
  void ReapFinishedHandlers();

  /// Divergence probe: the poll claims an applied position this primary's
  /// committed history cannot contain — past the commit point, or past the
  /// current term's start under an older term (a deposed primary's
  /// suffix). Such a follower must truncate and resync, not tail.
  bool Diverged(const PollRequest& poll) const;

  /// Builds the reply to one poll: batches from the WAL, a snapshot when
  /// the WAL no longer covers the poll's position (or the follower
  /// diverged), or a heartbeat. Every reply is stamped with our term.
  StatusOr<std::string> BuildReply(const PollRequest& poll);

  /// Builds the kRepair reply to one kFetchRange: the byte-identical
  /// journal region (WAL target) or the verified checkpoint image. An
  /// incomplete or rotten local copy answers with complete=0 rather than
  /// an error — the requester tries its next peer.
  StatusOr<std::string> BuildRepairReply(const FetchRangeRequest& fetch);

  durability::DurabilityManager* durability_;
  Statistics* stats_;
  ReplicationServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> deposed_{false};

  /// One follower connection's thread plus its "finished" flag (set as the
  /// handler's last act, so a true flag means join() returns promptly).
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  /// Guards followers_ and handler bookkeeping; acks_cv_ wakes quorum
  /// waiters whenever any follower's acked sequence advances.
  mutable std::mutex mutex_;
  std::condition_variable acks_cv_;
  std::unordered_map<int, uint64_t> follower_acked_;
  std::vector<Handler> handlers_;

  std::thread acceptor_;
};

}  // namespace replication
}  // namespace oneedit

#endif  // ONEEDIT_REPLICATION_SERVER_H_
