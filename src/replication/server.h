#ifndef ONEEDIT_REPLICATION_SERVER_H_
#define ONEEDIT_REPLICATION_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/statistics.h"
#include "durability/manager.h"
#include "replication/wire.h"

namespace oneedit {
namespace replication {

struct ReplicationServerOptions {
  /// Loopback port to listen on; 0 picks an ephemeral one (read it back
  /// via port()).
  uint16_t port = 0;
  /// Most batches shipped per poll round trip (bounds reply size and the
  /// follower's per-cycle apply work).
  size_t max_batches_per_poll = 32;
  /// SO_RCVTIMEO/SO_SNDTIMEO on follower connections: a wedged follower
  /// times out and is dropped instead of pinning its handler thread.
  int io_timeout_seconds = 5;
};

/// The primary's half of WAL shipping (docs/replication.md): accepts
/// follower connections, answers each kPoll with committed WAL batches read
/// through an EditWal::Cursor, and falls back to shipping the whole
/// checkpoint image when the follower's position was rotated out of the
/// WAL. Tracks every follower's acked (applied) sequence so the serving
/// writer can block acknowledgement on a replication quorum.
///
/// Threading: one acceptor thread plus one thread per follower connection.
/// Handler threads touch only the DurabilityManager's atomic counters and
/// on-disk files (WAL via cursor, checkpoint via whole-file read) — never
/// the system state — so they need no coordination with the serving
/// writer's locks.
class ReplicationServer {
 public:
  /// Binds and starts the acceptor. `durability` and `stats` must outlive
  /// the server; `stats` may be null.
  static StatusOr<std::unique_ptr<ReplicationServer>> Start(
      durability::DurabilityManager* durability, Statistics* stats,
      const ReplicationServerOptions& options = {});

  ~ReplicationServer();

  ReplicationServer(const ReplicationServer&) = delete;
  ReplicationServer& operator=(const ReplicationServer&) = delete;

  /// Stops accepting, disconnects every follower, joins all threads.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  size_t followers_connected() const;

  /// Highest sequence every connected follower has acked (0 when none are
  /// connected) — the replicated-everywhere watermark.
  uint64_t min_follower_applied() const;

  /// Blocks until at least `replicas` followers have acked a sequence >=
  /// `sequence`, or `timeout` elapses (false). The serving writer calls
  /// this after applying a batch so an acknowledged edit survives primary
  /// failover.
  bool WaitForAcks(uint64_t sequence, size_t replicas,
                   std::chrono::milliseconds timeout);

 private:
  ReplicationServer(durability::DurabilityManager* durability,
                    Statistics* stats,
                    const ReplicationServerOptions& options);

  void AcceptLoop();
  void ServeFollower(int fd);

  /// Builds the reply to one poll: batches from the WAL, a snapshot when
  /// the WAL no longer covers `from_sequence`, or a heartbeat.
  StatusOr<std::string> BuildReply(uint64_t from_sequence);

  durability::DurabilityManager* durability_;
  Statistics* stats_;
  ReplicationServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  /// Guards followers_ and handler bookkeeping; acks_cv_ wakes quorum
  /// waiters whenever any follower's acked sequence advances.
  mutable std::mutex mutex_;
  std::condition_variable acks_cv_;
  std::unordered_map<int, uint64_t> follower_acked_;
  std::vector<std::thread> handlers_;

  std::thread acceptor_;
};

}  // namespace replication
}  // namespace oneedit

#endif  // ONEEDIT_REPLICATION_SERVER_H_
