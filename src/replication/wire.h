#ifndef ONEEDIT_REPLICATION_WIRE_H_
#define ONEEDIT_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/net.h"
#include "util/status.h"
#include "util/statusor.h"

namespace oneedit {
namespace replication {

/// The replication protocol (docs/replication.md) is pull-based and
/// request/response: a follower sends one kPoll per round trip and the
/// primary answers with exactly one of kBatches / kSnapshot / kHeartbeat.
/// Every message rides in one CRC-guarded frame:
///
///   [u32 body_size][u32 crc32(body)][body]   body = [u8 type][payload]
///
/// — the same guard discipline as the edit WAL, so a half-written or
/// bit-flipped frame is detected before any field is trusted.
enum class MessageType : uint8_t {
  /// Follower -> primary: "ship me records from `from_sequence`; I have
  /// applied through `applied_sequence`" (the ack the primary's quorum
  /// wait watches).
  kPoll = 1,
  /// Primary -> follower: committed WAL batches, whole-batch aligned.
  kBatches = 2,
  /// Primary -> follower: a full checkpoint image — the follower is behind
  /// the primary's WAL head (rotated away) and must install, not tail.
  kSnapshot = 3,
  /// Primary -> follower: nothing new past `from_sequence`; carries the
  /// commit point so the follower can measure lag while idle.
  kHeartbeat = 4,
  /// Either direction: "your term is stale (or you are not welcome)";
  /// carries the rejecter's term so the peer can adopt it. The fencing
  /// primitive: a poll stamped with a lower term gets this instead of data,
  /// and a primary that receives a poll with a HIGHER term answers with it
  /// too — conceding that it has been deposed.
  kReject = 5,
  /// Repair client -> peer: "ship me the byte-identical journal region
  /// covering [from_sequence, through_sequence]" (or the checkpoint image).
  /// Sent by a node whose scrubber found bit-rot, to any replication
  /// endpoint holding a clean copy. Term-fenced like kPoll.
  kFetchRange = 6,
  /// Peer -> repair client: the requested bytes (or as much as the peer
  /// still holds — `complete` says whether the region is whole).
  kRepair = 7,
};

/// Why a kReject was sent.
enum class RejectReason : uint8_t {
  /// The sender's term is older than the rejecter's — fence yourself.
  kStaleTerm = 1,
  /// The server is at its follower cap; retry later (after backoff).
  kTooManyFollowers = 2,
  /// The rejecting server itself has been deposed and no longer serves.
  kDeposed = 3,
};

struct PollRequest {
  uint64_t from_sequence = 1;
  uint64_t applied_sequence = 0;
  /// Highest primary term the follower has observed. A primary with a
  /// lower term concedes; a primary with a higher one rejects the poll.
  uint64_t term = 0;
  /// Term of the follower's last applied record — the divergence probe:
  /// applied past the primary's watermark under an older term means the
  /// follower journaled a deposed primary's suffix and must resync.
  uint64_t applied_term = 0;
};

/// One writer batch as it sits in the primary's WAL: `frames` holds the
/// records' raw encoded bytes, shipped verbatim so the follower's journal
/// is byte-identical to the primary's. A batch may carry trailing
/// quarantine-verdict records (journaled after the batch applied).
struct ShippedBatch {
  uint64_t first_sequence = 0;
  uint64_t last_sequence = 0;
  uint32_t records = 0;
  std::string frames;
};

struct BatchesReply {
  uint64_t committed_sequence = 0;
  /// The shipping primary's term; a follower that has observed a higher
  /// one drops the reply instead of journaling a deposed primary's data.
  uint64_t term = 0;
  std::vector<ShippedBatch> batches;
};

struct SnapshotReply {
  uint64_t checkpoint_sequence = 0;
  uint64_t term = 0;
  /// Set when the snapshot was forced by divergence reconciliation: the
  /// follower's tail was journaled under a deposed term past this
  /// primary's committed watermark, so installing (which truncates the
  /// follower's WAL) is the fix, not an optimization.
  uint8_t divergence = 0;
  std::string bytes;
};

struct HeartbeatReply {
  uint64_t committed_sequence = 0;
  uint64_t term = 0;
};

struct RejectReply {
  /// The rejecter's (higher) term, for the peer to adopt.
  uint64_t term = 0;
  RejectReason reason = RejectReason::kStaleTerm;
};

/// What a kFetchRange / kRepair pair is about.
enum class RepairTarget : uint8_t {
  kWal = 1,
  kCheckpoint = 2,
};

struct FetchRangeRequest {
  RepairTarget target = RepairTarget::kWal;
  /// WAL: first and last sequence of the corrupt region to re-fetch.
  /// Checkpoint: ignored (the whole image ships).
  uint64_t from_sequence = 0;
  uint64_t through_sequence = 0;
  /// Requester's observed term, fenced exactly like a poll's.
  uint64_t term = 0;
};

struct RepairReply {
  RepairTarget target = RepairTarget::kWal;
  /// 1 when `bytes` covers the full requested region ([from_sequence,
  /// through_sequence] for a WAL fetch; a verified whole image for a
  /// checkpoint fetch). 0 when the peer rotated the region away or holds
  /// no clean copy — the requester falls back to another peer or to a
  /// local re-checkpoint.
  uint8_t complete = 0;
  /// WAL: sequences actually covered by `bytes`. Checkpoint: last_sequence
  /// is the image's coverage.
  uint64_t first_sequence = 0;
  uint64_t last_sequence = 0;
  /// The serving peer's term; the requester drops stale-term replies.
  uint64_t term = 0;
  /// WAL: verbatim frame bytes as they sit in the peer's journal (same
  /// CRCs — the splice restores a byte-identical region). Checkpoint: the
  /// whole verified image.
  std::string bytes;
};

/// One decoded protocol message; `type` says which member is live.
struct Message {
  MessageType type = MessageType::kHeartbeat;
  PollRequest poll;
  BatchesReply batches;
  SnapshotReply snapshot;
  HeartbeatReply heartbeat;
  RejectReply reject;
  FetchRangeRequest fetch;
  RepairReply repair;
};

std::string EncodePoll(const PollRequest& poll);
std::string EncodeBatches(const BatchesReply& reply);
std::string EncodeSnapshot(const SnapshotReply& reply);
std::string EncodeHeartbeat(const HeartbeatReply& reply);
std::string EncodeReject(const RejectReply& reply);
std::string EncodeFetchRange(const FetchRangeRequest& request);
std::string EncodeRepair(const RepairReply& reply);

/// Decodes one full frame (as produced by the Encode* functions) into a
/// Message. Corruption on CRC mismatch or a malformed body.
StatusOr<Message> DecodeMessage(const std::string& frame);

/// Sends one already-encoded frame over `fd` (SendAll semantics) through
/// `net` (Net::Default() when null).
Status SendFrame(int fd, const std::string& frame, net::Net* net = nullptr);

/// Receives one frame from `fd` through `net` (Net::Default() when null)
/// and decodes it. Unavailable on clean disconnect before a frame starts;
/// IoError on timeout or mid-frame EOF; Corruption on a CRC or decode
/// failure.
StatusOr<Message> RecvMessage(int fd, net::Net* net = nullptr);

}  // namespace replication
}  // namespace oneedit

#endif  // ONEEDIT_REPLICATION_WIRE_H_
