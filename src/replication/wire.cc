#include "replication/wire.h"

#include <cstring>

#include "util/crc32.h"
#include "util/net.h"

namespace oneedit {
namespace replication {
namespace {

/// Snapshot images dominate message size; a checkpoint is bounded well
/// under this, so anything larger is garbage, not data.
constexpr uint32_t kMaxBodyBytes = 1u << 30;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendBytes(std::string* out, const std::string& bytes) {
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

template <typename T>
bool ConsumeScalar(std::string_view* data, T* v) {
  if (data->size() < sizeof(T)) return false;
  std::memcpy(v, data->data(), sizeof(T));
  data->remove_prefix(sizeof(T));
  return true;
}

bool ConsumeBytes(std::string_view* data, std::string* bytes) {
  uint32_t size = 0;
  if (!ConsumeScalar(data, &size) || data->size() < size) return false;
  bytes->assign(data->data(), size);
  data->remove_prefix(size);
  return true;
}

std::string Frame(MessageType type, const std::string& payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  std::string frame;
  frame.reserve(2 * sizeof(uint32_t) + body.size());
  AppendU32(&frame, static_cast<uint32_t>(body.size()));
  AppendU32(&frame, Crc32(body));
  frame.append(body);
  return frame;
}

}  // namespace

std::string EncodePoll(const PollRequest& poll) {
  std::string payload;
  AppendU64(&payload, poll.from_sequence);
  AppendU64(&payload, poll.applied_sequence);
  AppendU64(&payload, poll.term);
  AppendU64(&payload, poll.applied_term);
  return Frame(MessageType::kPoll, payload);
}

std::string EncodeBatches(const BatchesReply& reply) {
  std::string payload;
  AppendU64(&payload, reply.committed_sequence);
  AppendU64(&payload, reply.term);
  AppendU32(&payload, static_cast<uint32_t>(reply.batches.size()));
  for (const ShippedBatch& batch : reply.batches) {
    AppendU64(&payload, batch.first_sequence);
    AppendU64(&payload, batch.last_sequence);
    AppendU32(&payload, batch.records);
    AppendBytes(&payload, batch.frames);
  }
  return Frame(MessageType::kBatches, payload);
}

std::string EncodeSnapshot(const SnapshotReply& reply) {
  std::string payload;
  AppendU64(&payload, reply.checkpoint_sequence);
  AppendU64(&payload, reply.term);
  payload.push_back(static_cast<char>(reply.divergence));
  AppendBytes(&payload, reply.bytes);
  return Frame(MessageType::kSnapshot, payload);
}

std::string EncodeHeartbeat(const HeartbeatReply& reply) {
  std::string payload;
  AppendU64(&payload, reply.committed_sequence);
  AppendU64(&payload, reply.term);
  return Frame(MessageType::kHeartbeat, payload);
}

std::string EncodeReject(const RejectReply& reply) {
  std::string payload;
  AppendU64(&payload, reply.term);
  payload.push_back(static_cast<char>(reply.reason));
  return Frame(MessageType::kReject, payload);
}

std::string EncodeFetchRange(const FetchRangeRequest& request) {
  std::string payload;
  payload.push_back(static_cast<char>(request.target));
  AppendU64(&payload, request.from_sequence);
  AppendU64(&payload, request.through_sequence);
  AppendU64(&payload, request.term);
  return Frame(MessageType::kFetchRange, payload);
}

std::string EncodeRepair(const RepairReply& reply) {
  std::string payload;
  payload.push_back(static_cast<char>(reply.target));
  payload.push_back(static_cast<char>(reply.complete));
  AppendU64(&payload, reply.first_sequence);
  AppendU64(&payload, reply.last_sequence);
  AppendU64(&payload, reply.term);
  AppendBytes(&payload, reply.bytes);
  return Frame(MessageType::kRepair, payload);
}

StatusOr<Message> DecodeMessage(const std::string& frame) {
  std::string_view rest(frame);
  uint32_t size = 0, crc = 0;
  if (!ConsumeScalar(&rest, &size) || !ConsumeScalar(&rest, &crc) ||
      rest.size() != size) {
    return Status::Corruption("replication frame truncated");
  }
  if (Crc32(rest) != crc) {
    return Status::Corruption("replication frame CRC mismatch");
  }
  uint8_t type = 0;
  if (!ConsumeScalar(&rest, &type)) {
    return Status::Corruption("replication frame empty body");
  }
  Message message;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kPoll:
      message.type = MessageType::kPoll;
      if (!ConsumeScalar(&rest, &message.poll.from_sequence) ||
          !ConsumeScalar(&rest, &message.poll.applied_sequence) ||
          !ConsumeScalar(&rest, &message.poll.term) ||
          !ConsumeScalar(&rest, &message.poll.applied_term) ||
          !rest.empty()) {
        return Status::Corruption("malformed poll message");
      }
      return message;
    case MessageType::kBatches: {
      message.type = MessageType::kBatches;
      uint32_t count = 0;
      if (!ConsumeScalar(&rest, &message.batches.committed_sequence) ||
          !ConsumeScalar(&rest, &message.batches.term) ||
          !ConsumeScalar(&rest, &count)) {
        return Status::Corruption("malformed batches message");
      }
      message.batches.batches.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        ShippedBatch batch;
        if (!ConsumeScalar(&rest, &batch.first_sequence) ||
            !ConsumeScalar(&rest, &batch.last_sequence) ||
            !ConsumeScalar(&rest, &batch.records) ||
            !ConsumeBytes(&rest, &batch.frames)) {
          return Status::Corruption("malformed batch " + std::to_string(i) +
                                    " in batches message");
        }
        message.batches.batches.push_back(std::move(batch));
      }
      if (!rest.empty()) {
        return Status::Corruption("trailing bytes in batches message");
      }
      return message;
    }
    case MessageType::kSnapshot:
      message.type = MessageType::kSnapshot;
      if (!ConsumeScalar(&rest, &message.snapshot.checkpoint_sequence) ||
          !ConsumeScalar(&rest, &message.snapshot.term) ||
          !ConsumeScalar(&rest, &message.snapshot.divergence) ||
          !ConsumeBytes(&rest, &message.snapshot.bytes) || !rest.empty()) {
        return Status::Corruption("malformed snapshot message");
      }
      return message;
    case MessageType::kHeartbeat:
      message.type = MessageType::kHeartbeat;
      if (!ConsumeScalar(&rest, &message.heartbeat.committed_sequence) ||
          !ConsumeScalar(&rest, &message.heartbeat.term) || !rest.empty()) {
        return Status::Corruption("malformed heartbeat message");
      }
      return message;
    case MessageType::kReject: {
      message.type = MessageType::kReject;
      uint8_t reason = 0;
      if (!ConsumeScalar(&rest, &message.reject.term) ||
          !ConsumeScalar(&rest, &reason) || reason < 1 || reason > 3 ||
          !rest.empty()) {
        return Status::Corruption("malformed reject message");
      }
      message.reject.reason = static_cast<RejectReason>(reason);
      return message;
    }
    case MessageType::kFetchRange: {
      message.type = MessageType::kFetchRange;
      uint8_t target = 0;
      if (!ConsumeScalar(&rest, &target) || target < 1 || target > 2 ||
          !ConsumeScalar(&rest, &message.fetch.from_sequence) ||
          !ConsumeScalar(&rest, &message.fetch.through_sequence) ||
          !ConsumeScalar(&rest, &message.fetch.term) || !rest.empty()) {
        return Status::Corruption("malformed fetch-range message");
      }
      message.fetch.target = static_cast<RepairTarget>(target);
      return message;
    }
    case MessageType::kRepair: {
      message.type = MessageType::kRepair;
      uint8_t target = 0;
      if (!ConsumeScalar(&rest, &target) || target < 1 || target > 2 ||
          !ConsumeScalar(&rest, &message.repair.complete) ||
          message.repair.complete > 1 ||
          !ConsumeScalar(&rest, &message.repair.first_sequence) ||
          !ConsumeScalar(&rest, &message.repair.last_sequence) ||
          !ConsumeScalar(&rest, &message.repair.term) ||
          !ConsumeBytes(&rest, &message.repair.bytes) || !rest.empty()) {
        return Status::Corruption("malformed repair message");
      }
      message.repair.target = static_cast<RepairTarget>(target);
      return message;
    }
  }
  return Status::Corruption("unknown replication message type " +
                            std::to_string(type));
}

Status SendFrame(int fd, const std::string& frame, net::Net* net) {
  net::Net* n = net != nullptr ? net : net::Net::Default();
  return n->Send(fd, frame);
}

StatusOr<Message> RecvMessage(int fd, net::Net* net) {
  net::Net* n = net != nullptr ? net : net::Net::Default();
  std::string header;
  ONEEDIT_RETURN_IF_ERROR(n->Recv(fd, 2 * sizeof(uint32_t), &header));
  uint32_t size = 0;
  std::memcpy(&size, header.data(), sizeof(size));
  if (size > kMaxBodyBytes) {
    return Status::Corruption("replication frame claims " +
                              std::to_string(size) + " bytes");
  }
  std::string body;
  ONEEDIT_RETURN_IF_ERROR(n->Recv(fd, size, &body));
  return DecodeMessage(header + body);
}

}  // namespace replication
}  // namespace oneedit
