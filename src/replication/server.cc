#include "replication/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "durability/checkpoint.h"
#include "durability/edit_wal.h"
#include "util/logging.h"
#include "util/net.h"

namespace oneedit {
namespace replication {

StatusOr<std::unique_ptr<ReplicationServer>> ReplicationServer::Start(
    durability::DurabilityManager* durability, Statistics* stats,
    const ReplicationServerOptions& options) {
  if (durability == nullptr) {
    return Status::InvalidArgument("replication needs a durability manager");
  }
  net::Net* net = options.net != nullptr ? options.net : net::Net::Default();
  ONEEDIT_ASSIGN_OR_RETURN(const net::Listener listener,
                           net->Listen(options.port));
  std::unique_ptr<ReplicationServer> server(
      new ReplicationServer(durability, stats, options));
  server->listen_fd_ = listener.fd;
  server->port_ = listener.port;
  server->acceptor_ = std::thread(&ReplicationServer::AcceptLoop,
                                  server.get());
  return server;
}

ReplicationServer::ReplicationServer(
    durability::DurabilityManager* durability, Statistics* stats,
    const ReplicationServerOptions& options)
    : durability_(durability), stats_(stats), options_(options) {}

ReplicationServer::~ReplicationServer() { Stop(); }

void ReplicationServer::Stop() {
  if (stopping_.exchange(true)) {
    // Another Stop already ran (or is running) the teardown below.
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Shutting down the listening socket fails the blocking accept() so the
  // acceptor observes stopping_ and exits; follower sockets are shut down
  // so handler threads fall out of their blocking recv.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [fd, acked] : follower_acked_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<Handler> handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  for (Handler& handler : handlers) {
    if (handler.thread.joinable()) handler.thread.join();
  }
  ::close(listen_fd_);
  acks_cv_.notify_all();
}

size_t ReplicationServer::handler_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return handlers_.size();
}

void ReplicationServer::ReapFinishedHandlers() {
  std::vector<Handler> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handlers_.begin();
    while (it != handlers_.end()) {
      if (it->done->load()) {
        finished.push_back(std::move(*it));
        it = handlers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: the done flag is the handler's last act, so
  // these joins return promptly and never wait on a thread that still
  // needs mutex_ for its own cleanup.
  for (Handler& handler : finished) {
    if (handler.thread.joinable()) handler.thread.join();
  }
}

size_t ReplicationServer::followers_connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return follower_acked_.size();
}

uint64_t ReplicationServer::min_follower_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t min_acked = 0;
  bool first = true;
  for (const auto& [fd, acked] : follower_acked_) {
    min_acked = first ? acked : std::min(min_acked, acked);
    first = false;
  }
  return min_acked;
}

AckWait ReplicationServer::WaitForAcks(uint64_t sequence, size_t replicas,
                                       std::chrono::milliseconds timeout) {
  if (replicas == 0) return AckWait::kQuorum;
  std::unique_lock<std::mutex> lock(mutex_);
  size_t acked = 0;
  const bool satisfied = acks_cv_.wait_for(lock, timeout, [&] {
    if (stopping_.load()) return true;  // don't wedge shutdown
    acked = 0;
    for (const auto& [fd, follower_sequence] : follower_acked_) {
      if (follower_sequence >= sequence) ++acked;
    }
    return acked >= replicas;
  });
  if (stopping_.load()) return AckWait::kStopped;
  return satisfied && acked >= replicas ? AckWait::kQuorum
                                        : AckWait::kTimeout;
}

void ReplicationServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) continue;  // EINTR / transient accept failure
    ReapFinishedHandlers();
    bool over_cap = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      over_cap = follower_acked_.size() >= options_.max_followers;
    }
    if (over_cap) {
      // Typed rejection, not a silent close: the follower learns it should
      // back off rather than treat this as a flaky network.
      RejectReply reject;
      reject.term = durability_->primary_term();
      reject.reason = RejectReason::kTooManyFollowers;
      // Tick before the frame goes out: a peer that has the rejection in
      // hand must be able to observe the counter.
      if (stats_ != nullptr) stats_->Add(Ticker::kReplFollowerLimitRejects);
      net_impl()->IoTimeouts(fd, options_.io_timeout_seconds);
      (void)SendFrame(fd, EncodeReject(reject), net_impl());
      ::close(fd);
      continue;
    }
    net_impl()->IoTimeouts(fd, options_.io_timeout_seconds);
    std::lock_guard<std::mutex> lock(mutex_);
    follower_acked_[fd] = 0;
    auto done = std::make_shared<std::atomic<bool>>(false);
    Handler handler;
    handler.done = done;
    handler.thread = std::thread(&ReplicationServer::ServeFollower, this, fd,
                                 done);
    handlers_.push_back(std::move(handler));
  }
}

void ReplicationServer::ServeFollower(int fd,
                                      std::shared_ptr<std::atomic<bool>>
                                          done) {
  while (!stopping_.load()) {
    StatusOr<Message> message = RecvMessage(fd, net_impl());
    if (!message.ok() || (message->type != MessageType::kPoll &&
                          message->type != MessageType::kFetchRange)) {
      break;
    }

    if (message->type == MessageType::kFetchRange) {
      // Repair fetch: term-fenced like a poll, but it never touches the
      // ack bookkeeping (a repair client is not a replica) and a higher
      // term only gets adopted, never flips us deposed — fetches also hit
      // follower-side repair listeners, whose term can trail the
      // requester's without anyone having been deposed.
      const FetchRangeRequest& fetch = message->fetch;
      const uint64_t our_term = durability_->primary_term();
      if (fetch.term > our_term) durability_->AdoptTerm(fetch.term);
      if (deposed_.load()) {
        RejectReply reject;
        reject.term = durability_->primary_term();
        reject.reason = RejectReason::kDeposed;
        if (!SendFrame(fd, EncodeReject(reject), net_impl()).ok()) break;
        continue;
      }
      if (fetch.term < our_term) {
        if (stats_ != nullptr) stats_->Add(Ticker::kReplTermRejections);
        RejectReply reject;
        reject.term = our_term;
        reject.reason = RejectReason::kStaleTerm;
        if (!SendFrame(fd, EncodeReject(reject), net_impl()).ok()) break;
        continue;
      }
      StatusOr<std::string> reply = BuildRepairReply(fetch);
      if (!reply.ok()) {
        ONEEDIT_LOG(Warning) << "repair fetch for sequences "
                             << fetch.from_sequence << ".."
                             << fetch.through_sequence
                             << " failed: " << reply.status().ToString();
        break;
      }
      if (stats_ != nullptr) {
        stats_->Add(Ticker::kReplBytesShipped, reply->size());
      }
      if (!SendFrame(fd, *reply, net_impl()).ok()) break;
      continue;
    }

    const PollRequest& poll = message->poll;

    // Term fencing, before any bookkeeping trusts the poll. A HIGHER term
    // means someone else won an election while we thought we were primary:
    // adopt it, flip to deposed, and tell the owner (once) to shed writes.
    const uint64_t our_term = durability_->primary_term();
    if (poll.term > our_term) {
      durability_->AdoptTerm(poll.term);
      if (!deposed_.exchange(true) && options_.on_deposed != nullptr) {
        options_.on_deposed(poll.term);
      }
    }
    if (deposed_.load()) {
      RejectReply reject;
      reject.term = durability_->primary_term();
      reject.reason = RejectReason::kDeposed;
      if (!SendFrame(fd, EncodeReject(reject), net_impl()).ok()) break;
      continue;
    }
    if (poll.term < our_term) {
      // A stale-term poller (a follower still loyal to a deposed primary,
      // or that primary itself probing): fence it with our term.
      if (stats_ != nullptr) stats_->Add(Ticker::kReplTermRejections);
      RejectReply reject;
      reject.term = our_term;
      reject.reason = RejectReason::kStaleTerm;
      if (!SendFrame(fd, EncodeReject(reject), net_impl()).ok()) break;
      continue;
    }

    // A diverged follower's "applied" covers records this primary's history
    // does not contain — crediting it toward the quorum would let a write
    // be acknowledged against phantom replication.
    if (!Diverged(poll)) {
      std::lock_guard<std::mutex> lock(mutex_);
      follower_acked_[fd] = poll.applied_sequence;
    }
    acks_cv_.notify_all();
    if (stats_ != nullptr) stats_->Add(Ticker::kReplPollsServed);

    StatusOr<std::string> reply = BuildReply(poll);
    if (!reply.ok()) {
      ONEEDIT_LOG(Warning) << "replication poll for sequence "
                           << poll.from_sequence
                           << " failed: " << reply.status().ToString();
      break;
    }
    if (stats_ != nullptr) {
      stats_->Add(Ticker::kReplBytesShipped, reply->size());
    }
    if (!SendFrame(fd, *reply, net_impl()).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    follower_acked_.erase(fd);
  }
  acks_cv_.notify_all();
  ::close(fd);
  done->store(true);
}

bool ReplicationServer::Diverged(const PollRequest& poll) const {
  if (poll.applied_sequence > durability_->committed_sequence()) return true;
  return poll.applied_term < durability_->primary_term() &&
         poll.applied_sequence > durability_->term_start_sequence();
}

StatusOr<std::string> ReplicationServer::BuildReply(const PollRequest& poll) {
  const uint64_t committed = durability_->committed_sequence();
  const uint64_t our_term = durability_->primary_term();
  const uint64_t from_sequence = poll.from_sequence;
  durability::Env* env = durability_->options().env != nullptr
                             ? durability_->options().env
                             : durability::Env::Default();

  // Divergence reconciliation: the follower journaled a deposed primary's
  // suffix (or claims records past our commit point). Tailing would splice
  // incompatible histories; only a snapshot install — which truncates the
  // follower's WAL — reconverges it byte-for-byte.
  if (Diverged(poll)) {
    const StatusOr<durability::CheckpointState> peeked =
        env->FileExists(durability_->checkpoint_path())
            ? durability::PeekCheckpointState(durability_->checkpoint_path(),
                                              env)
            : Status::NotFound("no checkpoint yet");
    if (peeked.ok()) {
      SnapshotReply snapshot;
      snapshot.checkpoint_sequence = peeked->last_sequence;
      snapshot.term = our_term;
      snapshot.divergence = 1;
      ONEEDIT_RETURN_IF_ERROR(env->ReadFileToString(
          durability_->checkpoint_path(), &snapshot.bytes));
      if (stats_ != nullptr) stats_->Add(Ticker::kReplSnapshotsShipped);
      return EncodeSnapshot(snapshot);
    }
    // No image to ship yet (promotion seals one, so this is transient).
    // Heartbeat; the follower stays put and re-polls.
    ONEEDIT_LOG(Warning) << "follower diverged (applied "
                         << poll.applied_sequence << " term "
                         << poll.applied_term << " vs committed " << committed
                         << " term " << our_term
                         << ") but no checkpoint to ship yet";
    HeartbeatReply heartbeat;
    heartbeat.committed_sequence = committed;
    heartbeat.term = our_term;
    return EncodeHeartbeat(heartbeat);
  }

  // A follower positioned at or below the last checkpoint's sequence wants
  // records the WAL rotated away — only a full install can catch it up.
  if (from_sequence <= committed &&
      env->FileExists(durability_->checkpoint_path())) {
    const StatusOr<durability::CheckpointState> peeked =
        durability::PeekCheckpointState(durability_->checkpoint_path(), env);
    if (peeked.ok() && peeked->last_sequence >= from_sequence) {
      SnapshotReply snapshot;
      snapshot.checkpoint_sequence = peeked->last_sequence;
      snapshot.term = our_term;
      ONEEDIT_RETURN_IF_ERROR(env->ReadFileToString(
          durability_->checkpoint_path(), &snapshot.bytes));
      if (stats_ != nullptr) stats_->Add(Ticker::kReplSnapshotsShipped);
      return EncodeSnapshot(snapshot);
    }
  }

  BatchesReply reply;
  reply.committed_sequence = committed;
  reply.term = our_term;
  if (from_sequence <= committed) {
    durability::EditWal::Cursor cursor(durability_->wal_path(),
                                       from_sequence, env);
    durability::EditWalRecord record;
    ShippedBatch batch;
    auto flush = [&] {
      if (batch.records == 0) return;
      reply.batches.push_back(std::move(batch));
      batch = ShippedBatch{};
    };
    for (;;) {
      ONEEDIT_ASSIGN_OR_RETURN(
          const durability::EditWal::Cursor::Poll poll, cursor.Next(&record));
      if (poll != durability::EditWal::Cursor::Poll::kRecord) {
        // kEndOfLog: the durable tail. kRotated: a checkpoint rotated the
        // log under us — answer with what we have; the next poll re-decides
        // (and will ship the new snapshot if the follower now needs one).
        break;
      }
      if (record.sequence > committed) break;  // in-flight, not yet acked
      if (record.first_in_batch) {
        if (reply.batches.size() + 1 >= options_.max_batches_per_poll &&
            batch.records > 0) {
          break;
        }
        flush();
      }
      if (batch.records == 0) batch.first_sequence = record.sequence;
      batch.last_sequence = record.sequence;
      ++batch.records;
      // Re-encoding is byte-identical to the journaled frame (Encode is
      // deterministic), so the follower's WAL ends up byte-for-byte equal.
      batch.frames += durability::EditWal::Encode(record);
    }
    flush();
  }

  if (reply.batches.empty()) {
    HeartbeatReply heartbeat;
    heartbeat.committed_sequence = committed;
    heartbeat.term = our_term;
    return EncodeHeartbeat(heartbeat);
  }
  if (stats_ != nullptr) {
    stats_->Add(Ticker::kReplBatchesShipped, reply.batches.size());
  }
  return EncodeBatches(reply);
}

StatusOr<std::string> ReplicationServer::BuildRepairReply(
    const FetchRangeRequest& fetch) {
  const uint64_t committed = durability_->committed_sequence();
  durability::Env* env = durability_->options().env != nullptr
                             ? durability_->options().env
                             : durability::Env::Default();
  RepairReply reply;
  reply.target = fetch.target;
  reply.term = durability_->primary_term();

  if (fetch.target == RepairTarget::kCheckpoint) {
    if (env->FileExists(durability_->checkpoint_path())) {
      std::string bytes;
      if (env->ReadFileToString(durability_->checkpoint_path(), &bytes)
              .ok()) {
        // Never ship rot: a peer whose own copy fails verification answers
        // complete=0 so the requester moves on.
        const StatusOr<durability::CheckpointState> state =
            durability::VerifyCheckpointImage(
                bytes, durability_->checkpoint_path());
        if (state.ok()) {
          reply.complete = 1;
          reply.first_sequence = 0;
          reply.last_sequence = state->last_sequence;
          reply.bytes = std::move(bytes);
        }
      }
    }
    return EncodeRepair(reply);
  }

  // WAL region fetch. Only a region this peer fully and contiguously holds
  // (and has committed — in-flight frames are not history yet) ships;
  // anything else is useless for a splice, so answer complete=0 instead.
  if (fetch.from_sequence == 0 || fetch.through_sequence > committed ||
      fetch.through_sequence < fetch.from_sequence) {
    return EncodeRepair(reply);
  }
  durability::EditWal::Cursor cursor(durability_->wal_path(),
                                     fetch.from_sequence, env);
  durability::EditWalRecord record;
  std::string bytes;
  uint64_t expect = fetch.from_sequence;
  for (;;) {
    const StatusOr<durability::EditWal::Cursor::Poll> poll =
        cursor.Next(&record);
    // Corruption in OUR journal, rotation, or end-of-log before the region
    // is covered all mean the same thing to the requester: incomplete.
    if (!poll.ok() || *poll != durability::EditWal::Cursor::Poll::kRecord) {
      break;
    }
    if (record.sequence != expect) break;  // prefix rotated away, or a gap
    // Byte-identical: Encode is deterministic, so the spliced region equals
    // the frames as they sit in this peer's journal.
    bytes += durability::EditWal::Encode(record);
    ++expect;
    if (record.sequence >= fetch.through_sequence) break;
  }
  if (expect > fetch.through_sequence) {
    reply.complete = 1;
    reply.first_sequence = fetch.from_sequence;
    reply.last_sequence = fetch.through_sequence;
    reply.bytes = std::move(bytes);
  }
  return EncodeRepair(reply);
}

}  // namespace replication
}  // namespace oneedit
