#include "replication/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "durability/checkpoint.h"
#include "durability/edit_wal.h"
#include "util/logging.h"
#include "util/net.h"

namespace oneedit {
namespace replication {

StatusOr<std::unique_ptr<ReplicationServer>> ReplicationServer::Start(
    durability::DurabilityManager* durability, Statistics* stats,
    const ReplicationServerOptions& options) {
  if (durability == nullptr) {
    return Status::InvalidArgument("replication needs a durability manager");
  }
  ONEEDIT_ASSIGN_OR_RETURN(const net::Listener listener,
                           net::ListenLoopback(options.port));
  std::unique_ptr<ReplicationServer> server(
      new ReplicationServer(durability, stats, options));
  server->listen_fd_ = listener.fd;
  server->port_ = listener.port;
  server->acceptor_ = std::thread(&ReplicationServer::AcceptLoop,
                                  server.get());
  return server;
}

ReplicationServer::ReplicationServer(
    durability::DurabilityManager* durability, Statistics* stats,
    const ReplicationServerOptions& options)
    : durability_(durability), stats_(stats), options_(options) {}

ReplicationServer::~ReplicationServer() { Stop(); }

void ReplicationServer::Stop() {
  if (stopping_.exchange(true)) {
    // Another Stop already ran (or is running) the teardown below.
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Shutting down the listening socket fails the blocking accept() so the
  // acceptor observes stopping_ and exits; follower sockets are shut down
  // so handler threads fall out of their blocking recv.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [fd, acked] : follower_acked_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& handler : handlers) {
    if (handler.joinable()) handler.join();
  }
  ::close(listen_fd_);
  acks_cv_.notify_all();
}

size_t ReplicationServer::followers_connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return follower_acked_.size();
}

uint64_t ReplicationServer::min_follower_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t min_acked = 0;
  bool first = true;
  for (const auto& [fd, acked] : follower_acked_) {
    min_acked = first ? acked : std::min(min_acked, acked);
    first = false;
  }
  return min_acked;
}

bool ReplicationServer::WaitForAcks(uint64_t sequence, size_t replicas,
                                    std::chrono::milliseconds timeout) {
  if (replicas == 0) return true;
  std::unique_lock<std::mutex> lock(mutex_);
  return acks_cv_.wait_for(lock, timeout, [&] {
    if (stopping_.load()) return true;  // don't wedge shutdown
    size_t acked = 0;
    for (const auto& [fd, follower_sequence] : follower_acked_) {
      if (follower_sequence >= sequence) ++acked;
    }
    return acked >= replicas;
  });
}

void ReplicationServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) continue;  // EINTR / transient accept failure
    net::SetIoTimeouts(fd, options_.io_timeout_seconds);
    std::lock_guard<std::mutex> lock(mutex_);
    follower_acked_[fd] = 0;
    handlers_.emplace_back(&ReplicationServer::ServeFollower, this, fd);
  }
}

void ReplicationServer::ServeFollower(int fd) {
  while (!stopping_.load()) {
    StatusOr<Message> message = RecvMessage(fd);
    if (!message.ok() || message->type != MessageType::kPoll) break;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      follower_acked_[fd] = message->poll.applied_sequence;
    }
    acks_cv_.notify_all();
    if (stats_ != nullptr) stats_->Add(Ticker::kReplPollsServed);

    StatusOr<std::string> reply = BuildReply(message->poll.from_sequence);
    if (!reply.ok()) {
      ONEEDIT_LOG(Warning) << "replication poll for sequence "
                           << message->poll.from_sequence
                           << " failed: " << reply.status().ToString();
      break;
    }
    if (stats_ != nullptr) {
      stats_->Add(Ticker::kReplBytesShipped, reply->size());
    }
    if (!SendFrame(fd, *reply).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    follower_acked_.erase(fd);
  }
  acks_cv_.notify_all();
  ::close(fd);
}

StatusOr<std::string> ReplicationServer::BuildReply(uint64_t from_sequence) {
  const uint64_t committed = durability_->committed_sequence();
  durability::Env* env = durability_->options().env != nullptr
                             ? durability_->options().env
                             : durability::Env::Default();

  // A follower positioned at or below the last checkpoint's sequence wants
  // records the WAL rotated away — only a full install can catch it up.
  if (from_sequence <= committed &&
      env->FileExists(durability_->checkpoint_path())) {
    const StatusOr<durability::CheckpointState> peeked =
        durability::PeekCheckpointState(durability_->checkpoint_path(), env);
    if (peeked.ok() && peeked->last_sequence >= from_sequence) {
      SnapshotReply snapshot;
      snapshot.checkpoint_sequence = peeked->last_sequence;
      ONEEDIT_RETURN_IF_ERROR(env->ReadFileToString(
          durability_->checkpoint_path(), &snapshot.bytes));
      if (stats_ != nullptr) stats_->Add(Ticker::kReplSnapshotsShipped);
      return EncodeSnapshot(snapshot);
    }
  }

  BatchesReply reply;
  reply.committed_sequence = committed;
  if (from_sequence <= committed) {
    durability::EditWal::Cursor cursor(durability_->wal_path(),
                                       from_sequence, env);
    durability::EditWalRecord record;
    ShippedBatch batch;
    auto flush = [&] {
      if (batch.records == 0) return;
      reply.batches.push_back(std::move(batch));
      batch = ShippedBatch{};
    };
    for (;;) {
      ONEEDIT_ASSIGN_OR_RETURN(
          const durability::EditWal::Cursor::Poll poll, cursor.Next(&record));
      if (poll != durability::EditWal::Cursor::Poll::kRecord) {
        // kEndOfLog: the durable tail. kRotated: a checkpoint rotated the
        // log under us — answer with what we have; the next poll re-decides
        // (and will ship the new snapshot if the follower now needs one).
        break;
      }
      if (record.sequence > committed) break;  // in-flight, not yet acked
      if (record.first_in_batch) {
        if (reply.batches.size() + 1 >= options_.max_batches_per_poll &&
            batch.records > 0) {
          break;
        }
        flush();
      }
      if (batch.records == 0) batch.first_sequence = record.sequence;
      batch.last_sequence = record.sequence;
      ++batch.records;
      // Re-encoding is byte-identical to the journaled frame (Encode is
      // deterministic), so the follower's WAL ends up byte-for-byte equal.
      batch.frames += durability::EditWal::Encode(record);
    }
    flush();
  }

  if (reply.batches.empty()) {
    HeartbeatReply heartbeat;
    heartbeat.committed_sequence = committed;
    return EncodeHeartbeat(heartbeat);
  }
  if (stats_ != nullptr) {
    stats_->Add(Ticker::kReplBatchesShipped, reply.batches.size());
  }
  return EncodeBatches(reply);
}

}  // namespace replication
}  // namespace oneedit
