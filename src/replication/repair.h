#ifndef ONEEDIT_REPLICATION_REPAIR_H_
#define ONEEDIT_REPLICATION_REPAIR_H_

#include <cstdint>

#include "replication/wire.h"
#include "util/net.h"
#include "util/statusor.h"

namespace oneedit {
namespace replication {

/// Repair client: dials `peer_port` (a primary's replication listener or a
/// follower's repair listener), sends one kFetchRange, and returns the
/// kRepair reply. One round trip per call — repair regions are small and a
/// requester walks its peer list, so no connection is kept.
///
/// Failure taxonomy the caller routes on:
///  - OK with reply.complete == 0: the peer is healthy but cannot serve the
///    region (rotated away, or its own copy failed verification) — try the
///    next peer.
///  - FailedPrecondition: the peer fenced us (kReject); the reply carried
///    the peer's term, already folded into the message — adopt and stop.
///  - IoError / Unavailable: the peer is unreachable — try the next peer.
StatusOr<RepairReply> FetchFromPeer(uint16_t peer_port,
                                    const FetchRangeRequest& request,
                                    net::Net* net = nullptr,
                                    int io_timeout_seconds = 5);

}  // namespace replication
}  // namespace oneedit

#endif  // ONEEDIT_REPLICATION_REPAIR_H_
