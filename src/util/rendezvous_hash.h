#ifndef ONEEDIT_UTIL_RENDEZVOUS_HASH_H_
#define ONEEDIT_UTIL_RENDEZVOUS_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oneedit {
namespace util {

/// Weighted rendezvous (highest-random-weight) hashing: every (key, node)
/// pair gets a deterministic pseudo-random score and the key lives on the
/// node with the highest score. The property that makes it the shard
/// placement map (docs/sharding.md): adding or removing one node moves ONLY
/// the keys whose top score involved that node — an expected 1/N of the
/// keyspace on add, and exactly the removed node's keys on remove. No ring,
/// no virtual-node table, no rebalancing state: placement is a pure
/// function of (key, node set).
///
/// Weighted scores use the standard -weight / log(u) transform (u uniform
/// in (0,1) derived from the 64-bit mix), so a node with weight 2 owns
/// ~twice the keyspace of a node with weight 1, and weight changes move
/// only the proportional slice.
///
/// Deterministic across processes and platforms: node seeds are FNV-1a of
/// the node id, the mixer is splitmix64, and no std::hash is involved.
/// Not thread-safe for mutation; const lookups are safe to share.
class RendezvousMap {
 public:
  struct Node {
    std::string id;
    double weight = 1.0;
    /// FNV-1a of `id` — the per-node seed mixed into every key score.
    uint64_t seed = 0;
  };

  /// Adds a node (weight clamped to > 0; duplicates update the weight).
  void AddNode(const std::string& id, double weight = 1.0);

  /// Removes a node; false if absent.
  bool RemoveNode(const std::string& id);

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Index (into nodes()) of the winning node for `key`. The map must be
  /// non-empty. Ties (astronomically unlikely) break toward the smaller
  /// node id, so the answer is total-order deterministic.
  size_t IndexFor(std::string_view key) const;

  /// The winning node's id. The map must be non-empty.
  const std::string& NodeFor(std::string_view key) const {
    return nodes_[IndexFor(key)].id;
  }

  /// The (key, node) score — exposed so tests can assert the 1/N key-move
  /// bound from first principles.
  static double Score(uint64_t key_hash, const Node& node);

  /// FNV-1a 64-bit over `data` — the key/node hash everything here uses.
  static uint64_t Fnv1a(std::string_view data);

  /// splitmix64 finalizer — mixes (key_hash, node_seed) into the uniform
  /// draw behind Score.
  static uint64_t Mix(uint64_t a, uint64_t b);

 private:
  std::vector<Node> nodes_;
};

}  // namespace util
}  // namespace oneedit

#endif  // ONEEDIT_UTIL_RENDEZVOUS_HASH_H_
