#ifndef ONEEDIT_UTIL_RNG_H_
#define ONEEDIT_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <string_view>

namespace oneedit {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256** seeded via splitmix64). All randomness in the library flows
/// through this type so that every dataset, model and experiment is exactly
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  /// Gaussian with the given mean / stddev.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  /// Returns a new Rng whose stream is a deterministic function of this
  /// generator's seed and `stream_tag` — used to decorrelate substreams
  /// (per-entity embeddings, per-probe noise, ...) without consuming state.
  static Rng ForStream(uint64_t seed, std::string_view stream_tag);

  /// Stable 64-bit hash of a string (FNV-1a); used for keyed substreams.
  static uint64_t HashString(std::string_view s);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace oneedit

#endif  // ONEEDIT_UTIL_RNG_H_
