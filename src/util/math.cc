#include "util/math.h"

#include <cassert>
#include <cmath>

namespace oneedit {

double Dot(const Vec& v, const Vec& w) {
  assert(v.size() == w.size());
  double acc = 0.0;
  for (size_t i = 0; i < v.size(); ++i) acc += v[i] * w[i];
  return acc;
}

double Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double alpha, const Vec& w, Vec* v) {
  assert(v->size() == w.size());
  for (size_t i = 0; i < w.size(); ++i) (*v)[i] += alpha * w[i];
}

void Scale(double alpha, Vec* v) {
  for (double& x : *v) x *= alpha;
}

Vec Normalized(const Vec& v) {
  const double n = Norm(v);
  if (n == 0.0) return v;
  Vec out = v;
  Scale(1.0 / n, &out);
  return out;
}

Vec Add(const Vec& v, const Vec& w) {
  assert(v.size() == w.size());
  Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] + w[i];
  return out;
}

Vec Sub(const Vec& v, const Vec& w) {
  assert(v.size() == w.size());
  Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] - w[i];
  return out;
}

double CosineSimilarity(const Vec& v, const Vec& w) {
  const double nv = Norm(v);
  const double nw = Norm(w);
  if (nv == 0.0 || nw == 0.0) return 0.0;
  return Dot(v, w) / (nv * nw);
}

Vec Matrix::MatVec(const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vec Matrix::TransposeMatVec(const Vec& x) const {
  assert(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::AddOuter(double alpha, const Vec& u, const Vec& v) {
  assert(u.size() == rows_ && v.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = &data_[r * cols_];
    const double au = alpha * u[r];
    for (size_t c = 0; c < cols_; ++c) row[c] += au * v[c];
  }
}

void Matrix::AddScaled(double alpha, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (const double x : data_) acc += x * x;
  return std::sqrt(acc);
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

StatusOr<Vec> SolveRidge(const Matrix& a, const Vec& b, double ridge) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveRidge: matrix must be square");
  }
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("SolveRidge: size mismatch");
  }
  const size_t n = a.rows();
  // Cholesky factorization of (A + ridge*I): L * L^T.
  Matrix l(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j) + (i == j ? ridge : 0.0);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::Internal("SolveRidge: matrix not positive definite");
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Forward substitution: L y = b.
  Vec y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  // Back substitution: L^T x = y.
  Vec x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

}  // namespace oneedit
