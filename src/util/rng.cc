#include "util/rng.h"

#include <cassert>

namespace oneedit {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

uint64_t Rng::HashString(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng Rng::ForStream(uint64_t seed, std::string_view stream_tag) {
  return Rng(seed ^ HashString(stream_tag));
}

}  // namespace oneedit
