#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace oneedit {

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    const size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace oneedit
