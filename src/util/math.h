#ifndef ONEEDIT_UTIL_MATH_H_
#define ONEEDIT_UTIL_MATH_H_

#include <cstddef>
#include <vector>

#include "util/statusor.h"

namespace oneedit {

/// Dense column vector of doubles.
using Vec = std::vector<double>;

/// v . w (sizes must match).
double Dot(const Vec& v, const Vec& w);

/// Euclidean norm.
double Norm(const Vec& v);

/// v += alpha * w.
void Axpy(double alpha, const Vec& w, Vec* v);

/// Scales v in place.
void Scale(double alpha, Vec* v);

/// Returns v normalized to unit length (zero vector is returned unchanged).
Vec Normalized(const Vec& v);

/// Element-wise sum / difference.
Vec Add(const Vec& v, const Vec& w);
Vec Sub(const Vec& v, const Vec& w);

/// Cosine similarity in [-1, 1]; 0 if either vector is zero.
double CosineSimilarity(const Vec& v, const Vec& w);

/// Dense row-major matrix of doubles.
///
/// Sized for the small embedding dimensions used by the simulated models
/// (d <= a few hundred); all operations are straightforward O(n*m) loops.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// y = (*this) * x. Requires x.size() == cols().
  Vec MatVec(const Vec& x) const;

  /// y = transpose(*this) * x. Requires x.size() == rows().
  Vec TransposeMatVec(const Vec& x) const;

  /// (*this) += alpha * u * v^T. Requires u.size()==rows(), v.size()==cols().
  void AddOuter(double alpha, const Vec& u, const Vec& v);

  /// (*this) += alpha * other (same shape).
  void AddScaled(double alpha, const Matrix& other);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Identity of size n.
  static Matrix Identity(size_t n);

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves (A + ridge*I) x = b for symmetric positive-definite A via Cholesky.
/// Returns InvalidArgument on shape mismatch, Internal if the (ridged) matrix
/// is not positive definite.
StatusOr<Vec> SolveRidge(const Matrix& a, const Vec& b, double ridge);

}  // namespace oneedit

#endif  // ONEEDIT_UTIL_MATH_H_
