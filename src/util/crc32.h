#ifndef ONEEDIT_UTIL_CRC32_H_
#define ONEEDIT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace oneedit {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
/// `seed` lets callers chain partial computations:
///   Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace oneedit

#endif  // ONEEDIT_UTIL_CRC32_H_
