#ifndef ONEEDIT_UTIL_TABLE_PRINTER_H_
#define ONEEDIT_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace oneedit {

/// Accumulates rows and prints an aligned ASCII table — used by the benchmark
/// harnesses to print paper-style tables (Table 1/2/3) to stdout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator line.
  void AddSeparator();

  /// Adds a full-width section label row (e.g., "GPT-J-6B").
  void AddSection(std::string label);

  /// Renders the table.
  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  struct Row {
    enum class Kind { kData, kSeparator, kSection } kind;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace oneedit

#endif  // ONEEDIT_UTIL_TABLE_PRINTER_H_
