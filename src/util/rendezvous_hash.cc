#include "util/rendezvous_hash.h"

#include <cmath>
#include <cstddef>

namespace oneedit {
namespace util {

uint64_t RendezvousMap::Fnv1a(std::string_view data) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t RendezvousMap::Mix(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ull + (b << 1 | b >> 63);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double RendezvousMap::Score(uint64_t key_hash, const Node& node) {
  const uint64_t mixed = Mix(key_hash, node.seed);
  // Uniform in (0, 1): the +1 / +2 offsets keep u strictly inside the open
  // interval so log(u) is finite and nonzero.
  const double u = (static_cast<double>(mixed >> 11) + 1.0) /
                   (9007199254740992.0 + 2.0);  // 2^53
  return -node.weight / std::log(u);
}

void RendezvousMap::AddNode(const std::string& id, double weight) {
  if (weight <= 0.0) weight = 1.0;
  for (Node& node : nodes_) {
    if (node.id == id) {
      node.weight = weight;
      return;
    }
  }
  nodes_.push_back(Node{id, weight, Fnv1a(id)});
}

bool RendezvousMap::RemoveNode(const std::string& id) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id == id) {
      nodes_.erase(nodes_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

size_t RendezvousMap::IndexFor(std::string_view key) const {
  const uint64_t key_hash = Fnv1a(key);
  size_t best = 0;
  double best_score = -1.0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const double score = Score(key_hash, nodes_[i]);
    if (score > best_score ||
        (score == best_score && nodes_[i].id < nodes_[best].id)) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

}  // namespace util
}  // namespace oneedit
