#ifndef ONEEDIT_UTIL_STATUS_H_
#define ONEEDIT_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace oneedit {

/// Error categories used across the library. Mirrors the usual
/// database-library convention (RocksDB/Arrow): operations that can fail
/// return a Status (or StatusOr<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kCorruption,
  kIoError,
  kConflict,  ///< Knowledge conflict detected by the Controller.
  kRejected,  ///< Edit rejected (e.g., toxic-knowledge guard).
  kResourceExhausted,  ///< Bounded queue/backpressure limit hit.
  kUnavailable,        ///< Service shutting down or not accepting work.
  kDeadlineExceeded,   ///< Request deadline expired before it could run.
};

/// Returns a short human-readable name for a code ("NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK status carries no message and allocates nothing. Error statuses
/// carry a code and a message. Statuses are copyable and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsRejected() const { return code_ == StatusCode::kRejected; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace oneedit

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define ONEEDIT_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::oneedit::Status _status_internal = (expr);     \
    if (!_status_internal.ok()) return _status_internal; \
  } while (0)

#endif  // ONEEDIT_UTIL_STATUS_H_
