#include "util/status.h"

namespace oneedit {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kRejected:
      return "Rejected";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace oneedit
