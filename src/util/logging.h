#ifndef ONEEDIT_UTIL_LOGGING_H_
#define ONEEDIT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace oneedit {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace oneedit

#define ONEEDIT_LOG(level)                                      \
  ::oneedit::internal_logging::LogMessage(                      \
      ::oneedit::LogLevel::k##level, __FILE__, __LINE__)

#endif  // ONEEDIT_UTIL_LOGGING_H_
