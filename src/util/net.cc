#include "util/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oneedit {
namespace net {

StatusOr<Listener> ListenLoopback(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int reuse = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + error);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + error);
  }
  Listener listener;
  listener.fd = fd;
  listener.port = ntohs(bound.sin_port);
  return listener;
}

StatusOr<int> ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + error);
  }
  return fd;
}

void SetIoTimeouts(int fd, int seconds) {
  timeval io_timeout{};
  io_timeout.tv_sec = seconds;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                     sizeof(io_timeout));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                     sizeof(io_timeout));
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             (n == 0 ? "peer gone" : std::strerror(errno)));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status RecvAll(int fd, size_t size, std::string* out) {
  out->clear();
  out->reserve(size);
  char buf[16384];
  while (out->size() < size) {
    const size_t want = std::min(size - out->size(), sizeof(buf));
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (out->empty()) return Status::Unavailable("connection closed");
      return Status::IoError("connection closed mid-message (" +
                             std::to_string(out->size()) + " of " +
                             std::to_string(size) + " bytes)");
    }
    out->append(buf, static_cast<size_t>(n));
  }
  return Status::OK();
}

Net* Net::Default() {
  static Net* instance = new Net();
  return instance;
}

StatusOr<Listener> FaultInjectingNet::Listen(uint16_t port, int backlog) {
  // Listening is control-plane setup, not a counted I/O op: chaos scripts
  // partition traffic, they don't prevent a server from standing up.
  return base_->Listen(port, backlog);
}

StatusOr<int> FaultInjectingNet::Connect(uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++ops_seen_;
    if (partitioned_ports_.count(port) > 0) {
      ++faults_injected_;
      return Status::Unavailable("injected partition: connect(127.0.0.1:" +
                                 std::to_string(port) + ") unreachable");
    }
  }
  FaultKind kind;
  if (NextOpFaultsUncounted(&kind)) {
    // A "drop" has no meaning for a connect; fail it like a reset so this
    // never smuggles an OK status into the StatusOr.
    return Fault(kind == FaultKind::kDrop ? FaultKind::kReset : kind);
  }
  StatusOr<int> fd = base_->Connect(port);
  if (fd.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_ports_[*fd] = port;
  }
  return fd;
}

void FaultInjectingNet::IoTimeouts(int fd, int seconds) {
  base_->IoTimeouts(fd, seconds);
}

Status FaultInjectingNet::Send(int fd, std::string_view data) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++ops_seen_;
    auto it = fd_ports_.find(fd);
    if (it != fd_ports_.end() && partitioned_ports_.count(it->second) > 0) {
      ++faults_injected_;
      return Status::IoError("injected partition: send black-holed");
    }
  }
  FaultKind kind;
  if (NextOpFaultsUncounted(&kind)) {
    if (kind == FaultKind::kDrop) return Status::OK();  // silent one-way loss
    return Fault(kind);
  }
  return base_->Send(fd, data);
}

Status FaultInjectingNet::Recv(int fd, size_t size, std::string* out) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++ops_seen_;
    auto it = fd_ports_.find(fd);
    if (it != fd_ports_.end() && partitioned_ports_.count(it->second) > 0) {
      ++faults_injected_;
      return Status::IoError("injected partition: recv black-holed");
    }
  }
  FaultKind kind;
  if (NextOpFaultsUncounted(&kind)) return Fault(kind);
  return base_->Recv(fd, size, out);
}

void FaultInjectingNet::FailAt(uint64_t op, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_at_op_ = op;
  armed_kind_ = kind;
}

void FaultInjectingNet::FailNext(uint64_t count, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_next_ = count;
  armed_kind_ = kind;
}

void FaultInjectingNet::SetLossy(double p, uint64_t seed, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  lossy_p_ = p;
  rng_.seed(seed);
  armed_kind_ = kind;
}

void FaultInjectingNet::PartitionPort(uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  partitioned_ports_.insert(port);
}

void FaultInjectingNet::HealPort(uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  partitioned_ports_.erase(port);
}

void FaultInjectingNet::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_at_op_ = 0;
  fail_next_ = 0;
  lossy_p_ = 0.0;
  partitioned_ports_.clear();
}

uint64_t FaultInjectingNet::ops_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_seen_;
}

uint64_t FaultInjectingNet::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_injected_;
}

bool FaultInjectingNet::NextOpFaultsUncounted(FaultKind* kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  *kind = armed_kind_;
  if (fail_at_op_ > 0 && --fail_at_op_ == 0) {
    ++faults_injected_;
    return true;
  }
  if (fail_next_ > 0) {
    --fail_next_;
    ++faults_injected_;
    return true;
  }
  if (lossy_p_ > 0.0 &&
      std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < lossy_p_) {
    ++faults_injected_;
    return true;
  }
  return false;
}

Status FaultInjectingNet::Fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kReset:
      return Status::IoError("injected connection reset");
    case FaultKind::kBlackHole:
      return Status::IoError("injected black hole: recv timed out");
    case FaultKind::kDrop:
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

}  // namespace net
}  // namespace oneedit
