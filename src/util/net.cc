#include "util/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oneedit {
namespace net {

StatusOr<Listener> ListenLoopback(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int reuse = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + error);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + error);
  }
  Listener listener;
  listener.fd = fd;
  listener.port = ntohs(bound.sin_port);
  return listener;
}

StatusOr<int> ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + error);
  }
  return fd;
}

void SetIoTimeouts(int fd, int seconds) {
  timeval io_timeout{};
  io_timeout.tv_sec = seconds;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                     sizeof(io_timeout));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                     sizeof(io_timeout));
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             (n == 0 ? "peer gone" : std::strerror(errno)));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status RecvAll(int fd, size_t size, std::string* out) {
  out->clear();
  out->reserve(size);
  char buf[16384];
  while (out->size() < size) {
    const size_t want = std::min(size - out->size(), sizeof(buf));
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (out->empty()) return Status::Unavailable("connection closed");
      return Status::IoError("connection closed mid-message (" +
                             std::to_string(out->size()) + " of " +
                             std::to_string(size) + " bytes)");
    }
    out->append(buf, static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace net
}  // namespace oneedit
