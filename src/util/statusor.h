#ifndef ONEEDIT_UTIL_STATUSOR_H_
#define ONEEDIT_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace oneedit {

/// Holds either a value of type T or an error Status.
///
/// A default-constructed StatusOr is an Internal error; construct from a
/// value or an error Status instead. Accessing value() on an error aborts in
/// debug builds and is undefined in release builds — always check ok() (or
/// use ValueOr) first.
template <typename T>
class StatusOr {
 public:
  StatusOr() : status_(Status::Internal("uninitialized StatusOr")) {}

  // Intentionally implicit so functions can `return value;` / `return status;`
  // (the established Status/StatusOr idiom).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace oneedit

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define ONEEDIT_ASSIGN_OR_RETURN(lhs, rexpr)          \
  ONEEDIT_ASSIGN_OR_RETURN_IMPL_(                     \
      ONEEDIT_STATUS_MACROS_CONCAT_(_status_or_value, __LINE__), lhs, rexpr)

#define ONEEDIT_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                   \
  if (!statusor.ok()) return statusor.status();              \
  lhs = std::move(statusor).value()

#define ONEEDIT_STATUS_MACROS_CONCAT_(x, y) ONEEDIT_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define ONEEDIT_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // ONEEDIT_UTIL_STATUSOR_H_
