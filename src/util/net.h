#ifndef ONEEDIT_UTIL_NET_H_
#define ONEEDIT_UTIL_NET_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "util/status.h"
#include "util/statusor.h"

namespace oneedit {
namespace net {

/// A bound, listening loopback socket plus the port it actually landed on
/// (passing port 0 picks an ephemeral one).
struct Listener {
  int fd = -1;
  uint16_t port = 0;
};

/// Binds 127.0.0.1:`port` (SO_REUSEADDR), listens with `backlog`, and reads
/// the bound port back via getsockname — the ephemeral-port pattern every
/// loopback sidecar here uses. The caller owns the returned fd.
StatusOr<Listener> ListenLoopback(uint16_t port, int backlog = 16);

/// Connects to 127.0.0.1:`port`. Blocking; the caller owns the returned fd
/// and should usually follow up with SetIoTimeouts.
StatusOr<int> ConnectLoopback(uint16_t port);

/// Bounds both directions of `fd` with SO_RCVTIMEO/SO_SNDTIMEO so a silent
/// or stalled peer can never wedge a blocking handler thread.
void SetIoTimeouts(int fd, int seconds);

/// Sends all of `data`, looping over short writes, with MSG_NOSIGNAL so a
/// peer that disconnects mid-send surfaces as EPIPE instead of raising
/// SIGPIPE and killing the process. Fails on timeout or disconnect.
Status SendAll(int fd, std::string_view data);

/// Receives exactly `size` bytes into `out` (resized), looping over short
/// reads. A clean EOF before any byte arrives is reported as Unavailable
/// ("connection closed"); a timeout or mid-message EOF is an IoError.
Status RecvAll(int fd, size_t size, std::string* out);

/// Virtual seam over the free functions above, so tests can interpose a
/// fault injector between the replication machinery and the real sockets —
/// the network analog of durability::FaultInjectingEnv. Production code
/// passes nullptr and gets Default(), which delegates straight through.
class Net {
 public:
  virtual ~Net() = default;

  virtual StatusOr<Listener> Listen(uint16_t port, int backlog = 16) {
    return ListenLoopback(port, backlog);
  }
  virtual StatusOr<int> Connect(uint16_t port) {
    return ConnectLoopback(port);
  }
  virtual void IoTimeouts(int fd, int seconds) { SetIoTimeouts(fd, seconds); }
  virtual Status Send(int fd, std::string_view data) {
    return SendAll(fd, data);
  }
  virtual Status Recv(int fd, size_t size, std::string* out) {
    return RecvAll(fd, size, out);
  }

  /// Process-wide pass-through instance.
  static Net* Default();
};

/// Deterministic network-fault injector: wraps a base Net (Default() when
/// null) and fails I/O operations at programmed points. Every Connect,
/// Send and Recv counts as one op; faults can be armed at the N-th op, for
/// the next K ops, or as a seeded Bernoulli process, and whole ports can be
/// partitioned away (new connects refused AND established sockets to them
/// black-holed), which is how the chaos tests split a primary from its
/// followers without touching the kernel.
///
/// Thread-safe; deterministic for a fixed seed and op interleaving.
class FaultInjectingNet : public Net {
 public:
  enum class FaultKind {
    kReset,      ///< fail like a peer RST: IoError, connection unusable
    kBlackHole,  ///< fail like a silent drop followed by an I/O timeout
    kDrop,       ///< Send claims success but ships nothing (one-way loss)
  };

  explicit FaultInjectingNet(Net* base = nullptr)
      : base_(base != nullptr ? base : Net::Default()) {}

  StatusOr<Listener> Listen(uint16_t port, int backlog = 16) override;
  StatusOr<int> Connect(uint16_t port) override;
  void IoTimeouts(int fd, int seconds) override;
  Status Send(int fd, std::string_view data) override;
  Status Recv(int fd, size_t size, std::string* out) override;

  /// Arms one fault at the `op`-th counted operation from now (1 = next).
  void FailAt(uint64_t op, FaultKind kind);
  /// Arms faults for the next `count` counted operations.
  void FailNext(uint64_t count, FaultKind kind);
  /// Every counted op faults independently with probability `p`,
  /// deterministically from `seed`.
  void SetLossy(double p, uint64_t seed, FaultKind kind);
  /// Partitions `port` away: Connects to it fail Unavailable, and Send/Recv
  /// on sockets already connected to it fail as kBlackHole.
  void PartitionPort(uint16_t port);
  void HealPort(uint16_t port);
  /// Drops all programmed faults and partitions.
  void Clear();

  uint64_t ops_seen() const;
  uint64_t faults_injected() const;

 private:
  /// Decides whether the current (already-counted) op draws a programmed
  /// fault — FailAt / FailNext / lossy, in that precedence.
  bool NextOpFaultsUncounted(FaultKind* kind);
  Status Fault(FaultKind kind);

  Net* base_;
  mutable std::mutex mutex_;
  uint64_t ops_seen_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t fail_at_op_ = 0;  // 0 = unarmed; counts down per op
  uint64_t fail_next_ = 0;
  double lossy_p_ = 0.0;
  FaultKind armed_kind_ = FaultKind::kReset;
  std::mt19937_64 rng_;
  std::unordered_set<uint16_t> partitioned_ports_;
  std::unordered_map<int, uint16_t> fd_ports_;
};

}  // namespace net
}  // namespace oneedit

#endif  // ONEEDIT_UTIL_NET_H_
