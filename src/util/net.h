#ifndef ONEEDIT_UTIL_NET_H_
#define ONEEDIT_UTIL_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace oneedit {
namespace net {

/// A bound, listening loopback socket plus the port it actually landed on
/// (passing port 0 picks an ephemeral one).
struct Listener {
  int fd = -1;
  uint16_t port = 0;
};

/// Binds 127.0.0.1:`port` (SO_REUSEADDR), listens with `backlog`, and reads
/// the bound port back via getsockname — the ephemeral-port pattern every
/// loopback sidecar here uses. The caller owns the returned fd.
StatusOr<Listener> ListenLoopback(uint16_t port, int backlog = 16);

/// Connects to 127.0.0.1:`port`. Blocking; the caller owns the returned fd
/// and should usually follow up with SetIoTimeouts.
StatusOr<int> ConnectLoopback(uint16_t port);

/// Bounds both directions of `fd` with SO_RCVTIMEO/SO_SNDTIMEO so a silent
/// or stalled peer can never wedge a blocking handler thread.
void SetIoTimeouts(int fd, int seconds);

/// Sends all of `data`, looping over short writes, with MSG_NOSIGNAL so a
/// peer that disconnects mid-send surfaces as EPIPE instead of raising
/// SIGPIPE and killing the process. Fails on timeout or disconnect.
Status SendAll(int fd, std::string_view data);

/// Receives exactly `size` bytes into `out` (resized), looping over short
/// reads. A clean EOF before any byte arrives is reported as Unavailable
/// ("connection closed"); a timeout or mid-message EOF is an IoError.
Status RecvAll(int fd, size_t size, std::string* out);

}  // namespace net
}  // namespace oneedit

#endif  // ONEEDIT_UTIL_NET_H_
