#ifndef ONEEDIT_UTIL_STRING_UTIL_H_
#define ONEEDIT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace oneedit {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// True if `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to);

/// Formats a double with `digits` decimal places (e.g., 0.913 -> "0.913").
std::string FormatDouble(double v, int digits);

}  // namespace oneedit

#endif  // ONEEDIT_UTIL_STRING_UTIL_H_
