#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace oneedit {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back({Row::Kind::kData, std::move(row)});
}

void TablePrinter::AddSeparator() { rows_.push_back({Row::Kind::kSeparator, {}}); }

void TablePrinter::AddSection(std::string label) {
  rows_.push_back({Row::Kind::kSection, {std::move(label)}});
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.kind != Row::Kind::kData) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  size_t total = 1;  // leading '|'
  for (const size_t w : widths) total += w + 3;

  const auto print_sep = [&] { os << std::string(total, '-') << "\n"; };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  print_sep();
  print_cells(header_);
  print_sep();
  for (const Row& row : rows_) {
    switch (row.kind) {
      case Row::Kind::kData:
        print_cells(row.cells);
        break;
      case Row::Kind::kSeparator:
        print_sep();
        break;
      case Row::Kind::kSection:
        os << "| " << row.cells[0];
        if (total > row.cells[0].size() + 4) {
          os << std::string(total - row.cells[0].size() - 4, ' ');
        }
        os << " |\n";
        break;
    }
  }
  print_sep();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace oneedit
