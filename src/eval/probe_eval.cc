#include "eval/probe_eval.h"

#include <algorithm>

#include "util/rng.h"

namespace oneedit {
namespace {

Decode DirectDecode(const LanguageModel& model, const Probe& probe) {
  QueryOptions options;
  options.key_noise = model.config().reliability_noise;
  options.probe_seed = probe.seed;
  return model.Query(probe.subject, probe.relation, options);
}

bool Confident(const LanguageModel& model, const Decode& decode) {
  return decode.intercepted || decode.margin >= model.config().decode_margin;
}

}  // namespace

bool EvalDirectProbe(const LanguageModel& model, const Probe& probe) {
  const Decode decode = DirectDecode(model, probe);
  return decode.entity == probe.expected && Confident(model, decode);
}

std::string LocalityBaseline(const LanguageModel& model, const Probe& probe) {
  return DirectDecode(model, probe).entity;
}

Decode LocalityDecode(const LanguageModel& model, const Probe& probe) {
  return DirectDecode(model, probe);
}

bool EvalLocalityUnchanged(const LanguageModel& model, const Probe& probe,
                           const std::string& pre_edit_answer) {
  return DirectDecode(model, probe).entity == pre_edit_answer;
}

bool EvalOneHopProbe(const LanguageModel& model, const KnowledgeGraph& kg,
                     const HopProbe& probe) {
  // Direct path: the composed question is the rule-head question.
  const RelationSchema& schema = kg.schema();
  const auto r1 = schema.Lookup(probe.r1);
  const auto r2 = schema.Lookup(probe.r2);
  if (r1.ok() && r2.ok()) {
    for (const HornRule& rule : kg.rules().rules()) {
      if (rule.body1 != *r1 || rule.body2 != *r2) continue;
      Probe direct;
      direct.subject = probe.subject;
      direct.relation = schema.Name(rule.head);
      direct.expected = probe.expected;
      direct.seed = probe.seed ^ 0x9E3779B97F4A7C15ULL;
      if (EvalDirectProbe(model, direct)) return true;
      break;
    }
  }

  // Chained path: two-step compositional query.
  const Decode composed =
      model.QueryComposed(probe.subject, probe.r1, probe.r2, probe.seed);
  return composed.entity == probe.expected && Confident(model, composed) &&
         composed.margin > 0.0;
}

std::vector<Probe> SampleCanaryProbes(
    const KnowledgeGraph& kg, uint64_t seed, size_t count,
    const std::unordered_set<std::string>& excluded_entities) {
  std::vector<Probe> probes;
  if (count == 0) return probes;

  // Canonicalize the exclusion footprint so an edit against an alias still
  // shields its canonical entity's facts from being sampled as canaries.
  std::unordered_set<EntityId> excluded;
  for (const std::string& name : excluded_entities) {
    const auto id = kg.LookupEntity(name);
    if (id.ok()) excluded.insert(kg.Canonical(*id));
  }

  std::vector<NamedTriple> candidates;
  for (const Triple& triple : kg.store().AllTriples()) {
    if (excluded.count(kg.Canonical(triple.subject)) > 0 ||
        excluded.count(kg.Canonical(triple.object)) > 0) {
      continue;
    }
    candidates.push_back(kg.ToNamed(triple));
  }

  // Partial Fisher-Yates over the sorted candidate list: deterministic in
  // (seed, KG state) and independent of sampling order elsewhere.
  Rng rng = Rng::ForStream(seed, "locality-canary");
  const size_t take = std::min(count, candidates.size());
  for (size_t i = 0; i < take; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng.NextBelow(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    Probe probe;
    probe.subject = candidates[i].subject;
    probe.relation = candidates[i].relation;
    probe.seed =
        seed ^ Rng::HashString(probe.subject + "|" + probe.relation);
    probes.push_back(std::move(probe));
  }
  return probes;
}

}  // namespace oneedit
