#ifndef ONEEDIT_EVAL_HARNESS_H_
#define ONEEDIT_EVAL_HARNESS_H_

#include <functional>
#include <memory>
#include <string>

#include "core/controller.h"
#include "core/oneedit.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "model/language_model.h"
#include "model/model_config.h"
#include "util/statusor.h"

namespace oneedit {

/// A row label of Tables 1-2: a base editing method, optionally wrapped by
/// OneEdit.
struct MethodSpec {
  std::string display;  ///< e.g. "OneEdit (MEMIT)"
  std::string base;     ///< "FT" / "ROME" / "MEMIT" / "GRACE"
  /// Typed counterpart of `base` — what OneEditConfig::method takes.
  EditingMethodKind kind = EditingMethodKind::kMemit;
  bool oneedit = false;
};

/// Parses "FT", "ROME", "MEMIT", "GRACE", "OneEdit (GRACE)",
/// "OneEdit(MEMIT)" (spacing-insensitive).
StatusOr<MethodSpec> ParseMethodSpec(const std::string& name);

/// Per-run knobs.
struct RunOptions {
  /// Sequential same-slot edits per case (Table 2's Users column).
  size_t users = 1;
  /// Controller settings for OneEdit rows (n, logical rules, ...).
  ControllerConfig controller;
  /// Editor cache (Table 3 ablation).
  bool use_cache = true;
  /// Evaluate only the first N cases (speed knob for tests).
  size_t max_cases = SIZE_MAX;
  /// OneEdit rows route each edit through the full NL pipeline
  /// (utterance -> Interpreter -> Controller -> Editor) with this simulated
  /// extraction error rate — the paper's Interpreter ceiling (§4.4).
  double extraction_error_rate = 0.04;
  /// Lifelong (sequential-all) protocol (Hartvigsen et al. 2023; Huang et
  /// al. 2023): apply every case's edit to ONE model instance without
  /// resets, then evaluate all cases at the end. `users` is ignored.
  bool lifelong = false;
};

/// Aggregated outcome of one (method, dataset, model) run.
struct HarnessResult {
  std::string method;
  std::string dataset;
  std::string model;
  MetricScores scores;
  size_t cases = 0;
  size_t edits = 0;       ///< primary edits applied (cases * users)
  size_t cache_hits = 0;  ///< OneEdit cache fast-path hits
  /// Mean wall-clock seconds per primary edit of *our simulation*.
  double measured_edit_seconds = 0.0;
  /// Mean cost-model seconds per primary edit (the Table 3 quantity).
  double modeled_edit_seconds = 0.0;
  /// Cost-model peak VRAM in GB (Table 3).
  double modeled_vram_gb = 0.0;
};

/// The experiment driver behind every table and figure bench.
///
/// Holds one pretrained model per (dataset, model-config) pair; each Run
/// evaluates a method over the dataset's cases with full isolation: model
/// weights snapshot/restore, method state reset, and KG version rollback
/// between cases. Table 1 semantics are users=1; Table 2 raises `users`;
/// Figures 3/4 vary the ControllerConfig.
class Harness {
 public:
  using DatasetFactory = std::function<Dataset()>;

  /// `factory` must be deterministic: it is called once for the reference
  /// world (model pretraining) and once per OneEdit run for a fresh KG.
  Harness(DatasetFactory factory, const ModelConfig& model_config);

  StatusOr<HarnessResult> Run(const MethodSpec& spec,
                              const RunOptions& options = {});

  const Dataset& reference() const { return reference_; }
  LanguageModel& model() { return *model_; }

 private:
  /// Rewrites a case's probes so they target `final_object` (the last user's
  /// edit) using ground-truth facts about it from the reference world.
  EditCase RetargetCase(const EditCase& original,
                        const std::string& final_object) const;

  StatusOr<HarnessResult> RunLifelong(const MethodSpec& spec,
                                      const RunOptions& options);

  DatasetFactory factory_;
  ModelConfig model_config_;
  Dataset reference_;
  std::unique_ptr<LanguageModel> model_;
  WeightSnapshot pristine_;
};

}  // namespace oneedit

#endif  // ONEEDIT_EVAL_HARNESS_H_
