#include "eval/metrics.h"

namespace oneedit {

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kReliability:
      return "Reliability";
    case Metric::kLocality:
      return "Locality";
    case Metric::kReverse:
      return "Reverse";
    case Metric::kOneHop:
      return "One-Hop";
    case Metric::kSubReplace:
      return "Sub-Replace";
  }
  return "?";
}

MetricAccumulator::Tally& MetricAccumulator::TallyFor(Metric metric) {
  switch (metric) {
    case Metric::kReliability:
      return reliability_;
    case Metric::kLocality:
      return locality_;
    case Metric::kReverse:
      return reverse_;
    case Metric::kOneHop:
      return one_hop_;
    case Metric::kSubReplace:
      return sub_replace_;
  }
  return reliability_;
}

const MetricAccumulator::Tally& MetricAccumulator::TallyFor(
    Metric metric) const {
  return const_cast<MetricAccumulator*>(this)->TallyFor(metric);
}

void MetricAccumulator::Add(Metric metric, bool success) {
  Tally& tally = TallyFor(metric);
  tally.total += 1;
  tally.successes += success ? 1 : 0;
}

double MetricAccumulator::Mean(Metric metric) const {
  const Tally& tally = TallyFor(metric);
  if (tally.total == 0) return 0.0;
  return static_cast<double>(tally.successes) /
         static_cast<double>(tally.total);
}

size_t MetricAccumulator::Count(Metric metric) const {
  return TallyFor(metric).total;
}

MetricScores MetricAccumulator::Scores() const {
  MetricScores scores;
  scores.reliability = Mean(Metric::kReliability);
  scores.locality = Mean(Metric::kLocality);
  scores.reverse = Mean(Metric::kReverse);
  scores.one_hop = Mean(Metric::kOneHop);
  scores.sub_replace = Mean(Metric::kSubReplace);
  return scores;
}

}  // namespace oneedit
