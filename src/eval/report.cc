#include "eval/report.h"

#include <fstream>

#include "util/string_util.h"

namespace oneedit {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  return "\"" + StrReplaceAll(field, "\"", "\"\"") + "\"";
}

}  // namespace

std::string ResultsCsvHeader() {
  return "method,dataset,model,cases,edits,reliability,locality,reverse,"
         "one_hop,sub_replace,average,cache_hits,measured_edit_seconds,"
         "modeled_edit_seconds,modeled_vram_gb";
}

std::string ResultToCsvRow(const HarnessResult& result) {
  const MetricScores& s = result.scores;
  std::vector<std::string> fields = {
      CsvEscape(result.method),
      CsvEscape(result.dataset),
      CsvEscape(result.model),
      std::to_string(result.cases),
      std::to_string(result.edits),
      FormatDouble(s.reliability, 4),
      FormatDouble(s.locality, 4),
      FormatDouble(s.reverse, 4),
      FormatDouble(s.one_hop, 4),
      FormatDouble(s.sub_replace, 4),
      FormatDouble(s.Average(), 4),
      std::to_string(result.cache_hits),
      FormatDouble(result.measured_edit_seconds, 6),
      FormatDouble(result.modeled_edit_seconds, 3),
      FormatDouble(result.modeled_vram_gb, 1),
  };
  return StrJoin(fields, ",");
}

Status WriteResultsCsv(const std::vector<HarnessResult>& results,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write CSV at " + path);
  out << ResultsCsvHeader() << "\n";
  for (const HarnessResult& result : results) {
    out << ResultToCsvRow(result) << "\n";
  }
  if (!out.good()) return Status::IoError("CSV write failed: " + path);
  return Status::OK();
}

}  // namespace oneedit
