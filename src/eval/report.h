#ifndef ONEEDIT_EVAL_REPORT_H_
#define ONEEDIT_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/harness.h"
#include "util/status.h"

namespace oneedit {

/// CSV header matching ResultToCsvRow's columns.
std::string ResultsCsvHeader();

/// One result as a CSV row (no trailing newline). Fields containing commas
/// or quotes are quoted per RFC 4180.
std::string ResultToCsvRow(const HarnessResult& result);

/// Writes header + one row per result to `path` (truncating). Benches use
/// this behind a --csv flag so downstream analysis doesn't scrape tables.
Status WriteResultsCsv(const std::vector<HarnessResult>& results,
                       const std::string& path);

}  // namespace oneedit

#endif  // ONEEDIT_EVAL_REPORT_H_
