#ifndef ONEEDIT_EVAL_METRICS_H_
#define ONEEDIT_EVAL_METRICS_H_

#include <cstddef>
#include <string>

namespace oneedit {

/// The five columns of Tables 1-2.
enum class Metric {
  kReliability,
  kLocality,
  kReverse,
  kOneHop,
  kSubReplace,
};

std::string MetricName(Metric metric);

/// Mean accuracies per metric plus the paper's "Average" column
/// (the mean of the five shown columns; e.g. GRACE's 1+1+0+0+0 -> 0.400).
struct MetricScores {
  double reliability = 0.0;
  double locality = 0.0;
  double reverse = 0.0;
  double one_hop = 0.0;
  double sub_replace = 0.0;

  double Average() const {
    return (reliability + locality + reverse + one_hop + sub_replace) / 5.0;
  }
};

/// Streaming accumulator for probe outcomes.
class MetricAccumulator {
 public:
  void Add(Metric metric, bool success);

  /// Mean accuracy for `metric`; 0 when no probes were recorded.
  double Mean(Metric metric) const;

  size_t Count(Metric metric) const;

  MetricScores Scores() const;

 private:
  struct Tally {
    size_t successes = 0;
    size_t total = 0;
  };
  Tally& TallyFor(Metric metric);
  const Tally& TallyFor(Metric metric) const;

  Tally reliability_, locality_, reverse_, one_hop_, sub_replace_;
};

}  // namespace oneedit

#endif  // ONEEDIT_EVAL_METRICS_H_
