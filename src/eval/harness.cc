#include "eval/harness.h"

#include <algorithm>

#include "core/cost_model.h"
#include "core/oneedit.h"
#include "editing/editor.h"
#include "eval/probe_eval.h"
#include "nlp/utterance_generator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace oneedit {

StatusOr<MethodSpec> ParseMethodSpec(const std::string& name) {
  std::string squashed;
  for (const char c : name) {
    if (c != ' ') squashed += c;
  }
  const std::string lower = ToLower(squashed);
  MethodSpec spec;
  std::string base = squashed;
  if (StartsWith(lower, "oneedit(") && EndsWith(lower, ")")) {
    spec.oneedit = true;
    base = squashed.substr(8, squashed.size() - 9);
  }
  std::string base_upper;
  for (const char c : base) {
    base_upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  const auto registered = RegisteredMethodNames();
  if (std::find(registered.begin(), registered.end(), base_upper) ==
      registered.end()) {
    return Status::InvalidArgument("unknown method spec: " + name);
  }
  spec.base = base_upper;
  ONEEDIT_ASSIGN_OR_RETURN(spec.kind, ParseMethodKind(base_upper));
  spec.display =
      spec.oneedit ? "OneEdit (" + spec.base + ")" : spec.base;
  return spec;
}

Harness::Harness(DatasetFactory factory, const ModelConfig& model_config)
    : factory_(std::move(factory)),
      model_config_(model_config),
      reference_(factory_()) {
  model_ = std::make_unique<LanguageModel>(model_config_, reference_.vocab);
  model_->Pretrain(reference_.pretrain_facts);
  pristine_ = model_->SnapshotWeights();
}

EditCase Harness::RetargetCase(const EditCase& original,
                               const std::string& final_object) const {
  EditCase out = original;
  if (final_object == original.edit.object) return out;
  out.edit.object = final_object;
  out.reliability.expected = final_object;
  for (Probe& probe : out.reverse) probe.subject = final_object;
  for (Probe& probe : out.sub_replace) probe.expected = final_object;

  // One-hop expectations come from ground-truth facts about the new object.
  const KnowledgeGraph& kg = reference_.kg;
  std::vector<HopProbe> hops;
  for (HopProbe probe : out.one_hop) {
    const auto object_id = kg.LookupEntity(final_object);
    const auto r2 = kg.schema().Lookup(probe.r2);
    if (!object_id.ok() || !r2.ok()) continue;
    const auto expected = kg.ObjectOf(*object_id, *r2);
    if (!expected.has_value()) continue;
    probe.expected = kg.EntityName(*expected);
    hops.push_back(std::move(probe));
  }
  out.one_hop = std::move(hops);
  return out;
}

StatusOr<HarnessResult> Harness::RunLifelong(const MethodSpec& spec,
                                             const RunOptions& options) {
  HarnessResult result;
  result.method = spec.display;
  result.dataset = reference_.name;
  result.model = model_config_.name;
  result.modeled_vram_gb = CostModel::VramGb(
      spec.base, model_config_.params_million, spec.oneedit);

  std::unique_ptr<Dataset> working;
  std::unique_ptr<OneEditSystem> system;
  std::unique_ptr<EditingMethod> baseline;
  if (spec.oneedit) {
    working = std::make_unique<Dataset>(factory_());
    OneEditConfig config;
    config.method = spec.kind;
    config.controller = options.controller;
    config.editor.use_cache = options.use_cache;
    config.interpreter.extraction_error_rate = options.extraction_error_rate;
    ONEEDIT_ASSIGN_OR_RETURN(
        system, OneEditSystem::Create(&working->kg, model_.get(), config));
  } else {
    ONEEDIT_ASSIGN_OR_RETURN(baseline, MakeEditingMethod(spec.base));
  }

  model_->RestoreWeights(pristine_);
  const size_t num_cases =
      std::min(options.max_cases, reference_.cases.size());

  // Pre-edit locality baselines for every case, on the pristine model.
  std::vector<std::vector<std::string>> baselines(num_cases);
  for (size_t c = 0; c < num_cases; ++c) {
    for (const Probe& probe : reference_.cases[c].locality) {
      baselines[c].push_back(LocalityBaseline(*model_, probe));
    }
  }

  // Phase 1: apply every edit sequentially, no resets.
  WallTimer timer;
  for (size_t c = 0; c < num_cases; ++c) {
    const NamedTriple& edit = reference_.cases[c].edit;
    if (spec.oneedit) {
      ONEEDIT_ASSIGN_OR_RETURN(
          const EditResult response,
          system->HandleUtterance(EditUtterance(edit, c * 7), "harness"));
      if (response.report.has_value()) {
        result.cache_hits += response.report->outcome.cache_hits;
      }
    } else {
      ONEEDIT_RETURN_IF_ERROR(baseline->ApplyEdit(model_.get(), edit).status());
    }
    ++result.edits;
  }
  if (result.edits > 0) {
    result.measured_edit_seconds = timer.ElapsedSeconds() / result.edits;
    result.modeled_edit_seconds = CostModel::EditSeconds(
        spec.base, model_config_.params_million, false);
  }

  // Phase 2: evaluate everything against the edited model.
  MetricAccumulator accumulator;
  for (size_t c = 0; c < num_cases; ++c) {
    const EditCase& edit_case = reference_.cases[c];
    accumulator.Add(Metric::kReliability,
                    EvalDirectProbe(*model_, edit_case.reliability));
    for (size_t i = 0; i < edit_case.locality.size(); ++i) {
      accumulator.Add(Metric::kLocality,
                      EvalLocalityUnchanged(*model_, edit_case.locality[i],
                                            baselines[c][i]));
    }
    for (const Probe& probe : edit_case.reverse) {
      accumulator.Add(Metric::kReverse, EvalDirectProbe(*model_, probe));
    }
    for (const HopProbe& probe : edit_case.one_hop) {
      accumulator.Add(Metric::kOneHop,
                      EvalOneHopProbe(*model_, reference_.kg, probe));
    }
    for (const Probe& probe : edit_case.sub_replace) {
      accumulator.Add(Metric::kSubReplace, EvalDirectProbe(*model_, probe));
    }
    ++result.cases;
  }

  model_->RestoreWeights(pristine_);
  if (spec.oneedit) {
    system->editor().ResetState();
  } else {
    baseline->Reset(model_.get());
  }
  result.scores = accumulator.Scores();
  return result;
}

StatusOr<HarnessResult> Harness::Run(const MethodSpec& spec,
                                     const RunOptions& options) {
  if (options.lifelong) return RunLifelong(spec, options);
  HarnessResult result;
  result.method = spec.display;
  result.dataset = reference_.name;
  result.model = model_config_.name;
  result.modeled_vram_gb = CostModel::VramGb(
      spec.base, model_config_.params_million, /*with_interpreter=*/spec.oneedit);

  // OneEdit runs get a fresh symbolic world; baselines run model-only.
  std::unique_ptr<Dataset> working;
  std::unique_ptr<OneEditSystem> system;
  std::unique_ptr<EditingMethod> baseline;
  OneEditSystem* system_ptr = nullptr;
  if (spec.oneedit) {
    working = std::make_unique<Dataset>(factory_());
    OneEditConfig config;
    config.method = spec.kind;
    config.controller = options.controller;
    config.editor.use_cache = options.use_cache;
    config.interpreter.extraction_error_rate = options.extraction_error_rate;
    ONEEDIT_ASSIGN_OR_RETURN(
        system, OneEditSystem::Create(&working->kg, model_.get(), config));
    system_ptr = system.get();
  } else {
    ONEEDIT_ASSIGN_OR_RETURN(baseline, MakeEditingMethod(spec.base));
  }

  MetricAccumulator accumulator;
  double measured_seconds = 0.0;
  double modeled_seconds = 0.0;

  const size_t num_cases = std::min(options.max_cases,
                                    reference_.cases.size());
  for (size_t c = 0; c < num_cases; ++c) {
    const EditCase& original = reference_.cases[c];

    // ---- fresh state ----
    model_->RestoreWeights(pristine_);
    uint64_t kg_checkpoint = 0;
    if (spec.oneedit) {
      system_ptr->editor().ResetState();
      kg_checkpoint = working->kg.version();
    } else {
      baseline->Reset(model_.get());
    }

    // ---- pre-edit locality baselines ----
    std::vector<std::string> baselines;
    baselines.reserve(original.locality.size());
    for (const Probe& probe : original.locality) {
      baselines.push_back(LocalityBaseline(*model_, probe));
    }

    // ---- sequential edits (users) ----
    std::vector<std::string> objects = {original.edit.object};
    for (const std::string& alt : original.alternative_objects) {
      if (objects.size() >= options.users) break;
      objects.push_back(alt);
    }
    size_t user_index = 0;
    for (const std::string& object : objects) {
      const NamedTriple triple{original.edit.subject, original.edit.relation,
                               object};
      WallTimer timer;
      if (spec.oneedit) {
        // Full NL pipeline: utterance -> intent -> extraction -> edit.
        const std::string utterance =
            EditUtterance(triple, c * 7 + user_index);
        ONEEDIT_ASSIGN_OR_RETURN(
            const EditResult response,
            system_ptr->HandleUtterance(utterance, "harness"));
        if (response.report.has_value()) {
          modeled_seconds += response.report->simulated_seconds +
                             (response.report->plan.no_op ? 0.0 : 1.2);
          result.cache_hits += response.report->outcome.cache_hits;
        } else {
          modeled_seconds += 1.2;  // interpreter pass only
        }
        ++user_index;
      } else {
        ONEEDIT_RETURN_IF_ERROR(
            baseline->ApplyEdit(model_.get(), triple).status());
        modeled_seconds += CostModel::EditSeconds(
            spec.base, model_config_.params_million, /*cache_hit=*/false);
      }
      measured_seconds += timer.ElapsedSeconds();
      ++result.edits;
    }

    // ---- evaluate against the final object ----
    const EditCase eval_case = RetargetCase(original, objects.back());
    accumulator.Add(Metric::kReliability,
                    EvalDirectProbe(*model_, eval_case.reliability));
    for (size_t i = 0; i < eval_case.locality.size(); ++i) {
      accumulator.Add(Metric::kLocality,
                      EvalLocalityUnchanged(*model_, eval_case.locality[i],
                                            baselines[i]));
    }
    for (const Probe& probe : eval_case.reverse) {
      accumulator.Add(Metric::kReverse, EvalDirectProbe(*model_, probe));
    }
    for (const HopProbe& probe : eval_case.one_hop) {
      accumulator.Add(Metric::kOneHop,
                      EvalOneHopProbe(*model_, reference_.kg, probe));
    }
    for (const Probe& probe : eval_case.sub_replace) {
      accumulator.Add(Metric::kSubReplace, EvalDirectProbe(*model_, probe));
    }
    ++result.cases;

    // ---- restore symbolic world ----
    if (spec.oneedit) {
      ONEEDIT_RETURN_IF_ERROR(working->kg.RollbackTo(kg_checkpoint));
    }
  }

  // Leave the shared model pristine for the next run.
  model_->RestoreWeights(pristine_);
  if (spec.oneedit) system_ptr->editor().ResetState();

  result.scores = accumulator.Scores();
  if (result.edits > 0) {
    result.measured_edit_seconds = measured_seconds / result.edits;
    result.modeled_edit_seconds = modeled_seconds / result.edits;
  }
  return result;
}

}  // namespace oneedit
