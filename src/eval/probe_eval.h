#ifndef ONEEDIT_EVAL_PROBE_EVAL_H_
#define ONEEDIT_EVAL_PROBE_EVAL_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "kg/knowledge_graph.h"
#include "model/language_model.h"

namespace oneedit {

/// Probe semantics (Eq. 9-11) against a (possibly edited) model.
///
/// All probes apply their pinned key-noise seed so a probe is identical
/// before and after an edit, and success requires a confident decode
/// (margin >= the model's decode_margin) in addition to correctness.

/// Reliability / Reverse / Sub-Replace: direct slot query under mild
/// rephrasing noise; success = decodes `probe.expected` confidently.
bool EvalDirectProbe(const LanguageModel& model, const Probe& probe);

/// Locality baseline: what the model answers for the probe *now* (call
/// before editing).
std::string LocalityBaseline(const LanguageModel& model, const Probe& probe);

/// The full decode behind LocalityBaseline (same pinned noise), exposing
/// `margin` so serving-time canary selection can prefer facts the model
/// currently decodes confidently — marginal decodes flip under benign
/// batch drift and make useless canaries.
Decode LocalityDecode(const LanguageModel& model, const Probe& probe);

/// Locality (Eq. 10): the post-edit decode must equal the pre-edit decode.
bool EvalLocalityUnchanged(const LanguageModel& model, const Probe& probe,
                           const std::string& pre_edit_answer);

/// One-Hop (portability): the model may answer the multi-hop question either
/// directly — the composed question *is* the rule-head question ("Who is the
/// First Lady of X?") when a rule body1=r1, body2=r2 exists in `kg` — or by
/// chaining two lookups. Success on either path counts.
bool EvalOneHopProbe(const LanguageModel& model, const KnowledgeGraph& kg,
                     const HopProbe& probe);

// --- Live canaries (serving-time self-healing) -------------------------------

/// Deterministically samples up to `count` locality-canary probes from the
/// KG's triples, excluding any triple whose (canonicalized) subject or
/// object appears in `excluded_entities` — the entity footprint of the batch
/// under validation. Both the selection and every probe's key-noise seed
/// derive only from `seed` and the KG contents (AllTriples is sorted), so
/// recovery replay from the same pre-batch state re-derives the exact same
/// canary set the live writer probed — the property that makes a journaled
/// quarantine verdict reproducible.
///
/// The probes have empty `expected`: pair them with LocalityBaseline before
/// the batch applies and EvalLocalityUnchanged after.
std::vector<Probe> SampleCanaryProbes(
    const KnowledgeGraph& kg, uint64_t seed, size_t count,
    const std::unordered_set<std::string>& excluded_entities);

}  // namespace oneedit

#endif  // ONEEDIT_EVAL_PROBE_EVAL_H_
