#!/usr/bin/env bash
# Builds everything, runs the full test suite, every paper bench, every
# example, and leaves test_output.txt / bench_output.txt in the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

(for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===================== $b ====================="
    "$b"
    echo
  fi
done) 2>&1 | tee bench_output.txt

for e in build/examples/*; do
  if [ -x "$e" ] && [ -f "$e" ] && [ "$(basename "$e")" != interactive_repl ]; then
    echo "===================== $e ====================="
    "$e"
    echo
  fi
done
