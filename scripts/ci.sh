#!/usr/bin/env bash
# CI driver: configure, build, and test one sanitizer matrix entry.
#
# Usage: scripts/ci.sh [default|tsan|asan|snapshot|recovery|chaos|metrics]
#
#   default   Release-ish build, full ctest suite.
#   tsan      ThreadSanitizer build; runs the concurrency-sensitive tests
#             (serving_test, durability degraded-mode) plus the core suite.
#   asan      Address+UB sanitizer build, full ctest suite.
#   snapshot  Epoch-based read-path torture: the snapshot_test suite (the
#             SnapshotHub pin protocol, retention/retirement accounting,
#             and the readers-vs-edit-storm torture run) plus the
#             deprecated-shim equivalence test, under ThreadSanitizer AND
#             Address+UB sanitizer (one build each).
#   recovery  Crash-recovery smoke: run the example workload, kill -9 the
#             process (via the fault-injecting Env's _Exit(137)) at every
#             file operation in turn, restart, and verify no acknowledged
#             edit was lost.
#   chaos     Serving stress under random intermittent WAL faults: each
#             durability op independently fails with probability p while
#             client threads submit edits; the service must flap through
#             degraded mode, auto-heal back to healthy once the faults
#             stop, and a fresh process must recover every acknowledged
#             edit. Runs over several seeds.
#   metrics   Observability smoke: run the chaos workload with the metrics
#             listener on, scrape /metrics and /metrics.json mid-flight,
#             and assert the Prometheus text carries every ticker, the
#             latency percentiles, replication gauges, and self-consistent
#             counter values.
#   replication  Failover chaos: 1 primary + 2 followers as separate
#             processes, kill -9 the primary (hard crash via the
#             fault-injecting Env) at every WAL/checkpoint file operation
#             in turn, promote the most-caught-up follower, and demand
#             every acknowledged edit back from it plus one new write.
#   partition  Dual-primary (split-brain) chaos: partition the primary away
#             mid-edit-storm through the deterministic FaultInjectingNet,
#             promote a follower, write on both sides, heal, and assert
#             zero acknowledged-edit loss, no edit acked by two primaries,
#             deposed-primary demotion, and byte-identical journals after
#             divergence reconciliation. 10 seeded rounds.
#   scenarios Scenario matrix: bench/scenario_bench drives a live
#             EditService (and a primary+follower pair) through seeded
#             workload shapes — Zipf read storm, edit burst, poison storm,
#             rolling failover, disk-full, live rule push — each asserting
#             its invariants (zero acknowledged loss, quarantine trips,
#             health transitions, profiler top-K matches injected skew) by
#             scraping the service's own /metrics, and emits per-scenario
#             rows into BENCH_scenarios.json.
#   scrub     Storage-fault chaos: the full scrub/repair suite (disk-budget
#             ENOSPC degradation, bit-flip-at-every-offset scrubbing,
#             salvage recovery, replica-assisted repair) plus 10 seeded
#             rounds of random bit-rot + disk-full against a live
#             primary+follower pair, asserting detection, byte-identical
#             repair, auto-heal, and zero acknowledged-edit loss.
#   shard     Horizontal sharding: rendezvous-hash properties, the shard
#             router suite (routing, tenants, quotas, 2PC happy/refusal
#             paths, metrics export), the kill-at-every-failpoint 2PC
#             crash sweep, and 10 seeded chaos rounds of mixed
#             single/cross-shard edits under mid-workload crashes —
#             asserting atomicity and zero acknowledged-edit loss.
#
# Each matrix entry gets its own build directory (build-ci-<name>) so local
# `build/` trees are never clobbered.
set -euo pipefail

matrix="${1:-default}"
jobs="$(nproc)"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${src_dir}/build-ci-${matrix}"

case "${matrix}" in
  default)
    flags=""
    build_type=Release
    ;;
  tsan)
    flags="-fsanitize=thread -fno-omit-frame-pointer"
    build_type=RelWithDebInfo
    ;;
  asan)
    flags="-fsanitize=address,undefined -fno-omit-frame-pointer"
    build_type=RelWithDebInfo
    ;;
  snapshot)
    flags=""  # per-sanitizer flags are set in the snapshot branch below
    build_type=RelWithDebInfo
    ;;
  recovery)
    flags=""
    build_type=Release
    ;;
  chaos)
    flags=""
    build_type=Release
    ;;
  metrics)
    flags=""
    build_type=Release
    ;;
  replication)
    flags=""
    build_type=Release
    ;;
  partition)
    flags=""
    build_type=Release
    ;;
  scrub)
    flags=""
    build_type=Release
    ;;
  scenarios)
    flags=""
    build_type=Release
    ;;
  shard)
    flags=""
    build_type=Release
    ;;
  *)
    echo "unknown matrix entry: ${matrix} (want default|tsan|asan|snapshot|recovery|chaos|metrics|replication|partition|scrub|scenarios|shard)" >&2
    exit 2
    ;;
esac

if [[ "${matrix}" == "snapshot" ]]; then
  # The torture run is the point of this entry: TSan proves the pin
  # protocol publishes/retires without a data race, ASan+UBSan proves no
  # retired state is read after free. One build per sanitizer (they cannot
  # be combined in a single binary).
  for san in tsan asan; do
    case "${san}" in
      tsan) sflags="-fsanitize=thread -fno-omit-frame-pointer" ;;
      asan) sflags="-fsanitize=address,undefined -fno-omit-frame-pointer" ;;
    esac
    sdir="${src_dir}/build-ci-snapshot-${san}"
    echo "--- snapshot torture under ${san}"
    cmake -B "${sdir}" -S "${src_dir}" \
      -DCMAKE_BUILD_TYPE="${build_type}" \
      -DCMAKE_CXX_FLAGS="${sflags}" \
      -DCMAKE_EXE_LINKER_FLAGS="${sflags}"
    cmake --build "${sdir}" -j "${jobs}" --target snapshot_test serving_test
    "${sdir}/tests/snapshot_test"
    "${sdir}/tests/serving_test" \
      --gtest_filter='EditServiceTest.DeprecatedAskShimsMatchSnapshotReads'
  done
  echo "snapshot torture passed under TSan and ASan+UBSan"
  exit 0
fi

cmake -B "${build_dir}" -S "${src_dir}" \
  -DCMAKE_BUILD_TYPE="${build_type}" \
  -DCMAKE_CXX_FLAGS="${flags}" \
  -DCMAKE_EXE_LINKER_FLAGS="${flags}"
cmake --build "${build_dir}" -j "${jobs}"

cd "${build_dir}"
if [[ "${matrix}" == "tsan" ]]; then
  # TSan slows everything ~10x; run the concurrency tests (the reason this
  # entry exists) plus a smoke slice of the core suite.
  ctest -j "${jobs}" --output-on-failure \
    -R 'EditServiceTest|EditServiceShutdownTest|ServiceSelfHealTest|ConcurrentOneEditTest|OneEditTest|EditServiceDurabilityTest|TraceRecorderTest|EditServiceObsTest|MetricsServerTest|ProfilerTest|ReplicationTest|ReplicationWireTest|ReplicationTermTest|ReplicationServerTest|ReplicationFollowerTest|ReplicationPartitionTest|FaultInjectingNetTest|EditWalCursorTest|NetTest|SnapshotHubTest|EditServiceSnapshotTest|ScrubberTest|ReplicaRepairTest|DiskFullServiceTest|RendezvousHashTest|ShardRouterTest|Shard2pcTest'
elif [[ "${matrix}" == "recovery" ]]; then
  # Crash-recovery smoke. A clean run of the workload performs ~20 file ops
  # (WAL appends, fsyncs, checkpoint writes, renames, rotations); kill the
  # process at each one, restart, and demand every acknowledged edit back.
  demo="${build_dir}/examples/recovery_demo"
  workdir="$(mktemp -d)"
  trap 'rm -rf "${workdir}"' EXIT
  edits=6

  echo "--- recovery smoke: clean run + verify"
  "${demo}" --dir="${workdir}/clean" --edits="${edits}"
  "${demo}" --dir="${workdir}/clean" --verify

  # Upper-bound the failpoint count from the clean run's wal/checkpoint
  # tickers; iterating past the last real op just yields uneventful runs.
  # (Includes the directory-fsync ops after checkpoint rename and rotation.)
  crash_points=28
  echo "--- recovery smoke: kill -9 at each of ${crash_points} file ops"
  for ((op = 0; op < crash_points; ++op)); do
    dir="${workdir}/crash-${op}"
    status=0
    "${demo}" --dir="${dir}" --edits="${edits}" --crash-at="${op}" \
      --hard-crash > "${workdir}/crash-${op}.log" 2>&1 || status=$?
    if [[ "${status}" -ne 137 && "${status}" -ne 0 ]]; then
      echo "crash run ${op} exited ${status} (want 137 or clean 0)" >&2
      cat "${workdir}/crash-${op}.log" >&2
      exit 1
    fi
    if ! "${demo}" --dir="${dir}" --verify > "${workdir}/verify-${op}.log" 2>&1; then
      echo "RECOVERY FAILED after crash at file op ${op}" >&2
      cat "${workdir}/verify-${op}.log" >&2
      exit 1
    fi
  done
  echo "recovery smoke passed: ${crash_points} kill points, no acknowledged edit lost"
elif [[ "${matrix}" == "chaos" ]]; then
  # Fault-injection stress: intermittent WAL failures while concurrent
  # clients write. Two properties, per seed: (1) the service auto-heals —
  # the run exits nonzero if it is not healthy (and writable) once the
  # faults clear; (2) zero acknowledged-edit loss — a pristine process
  # recovers the directory and demands every acked edit back.
  demo="${build_dir}/examples/chaos_demo"
  workdir="$(mktemp -d)"
  trap 'rm -rf "${workdir}"' EXIT

  for seed in 1 2 3; do
    dir="${workdir}/seed-${seed}"
    echo "--- chaos stress: seed ${seed}, fault p=0.25"
    if ! "${demo}" --dir="${dir}" --fault-p=0.25 --seed="${seed}" \
        --clients=4 --edits-per-client=6 > "${workdir}/run-${seed}.log" 2>&1; then
      echo "CHAOS RUN FAILED (seed ${seed})" >&2
      cat "${workdir}/run-${seed}.log" >&2
      exit 1
    fi
    cat "${workdir}/run-${seed}.log"
    if ! "${demo}" --dir="${dir}" --verify > "${workdir}/verify-${seed}.log" 2>&1; then
      echo "CHAOS VERIFY FAILED (seed ${seed})" >&2
      cat "${workdir}/verify-${seed}.log" >&2
      exit 1
    fi
    cat "${workdir}/verify-${seed}.log"
  done
  echo "chaos stress passed: 3 seeds, auto-heal + zero acknowledged-edit loss"
elif [[ "${matrix}" == "metrics" ]]; then
  # Observability smoke: the chaos workload with the metrics listener on.
  # The demo holds the service up after the storm; we scrape during that
  # window and assert the export surface is complete and self-consistent.
  demo="${build_dir}/examples/chaos_demo"
  workdir="$(mktemp -d)"
  trap 'rm -rf "${workdir}"' EXIT
  dir="${workdir}/metrics"
  mkdir -p "${dir}"

  "${demo}" --dir="${dir}" --fault-p=0.25 --seed=1 --clients=4 \
    --edits-per-client=6 --metrics-port=0 --hold-ms=8000 \
    > "${workdir}/run.log" 2>&1 &
  demo_pid=$!

  # The demo writes the ephemeral port once the listener is bound.
  for _ in $(seq 1 100); do
    [[ -s "${dir}/metrics.port" ]] && break
    sleep 0.1
  done
  if [[ ! -s "${dir}/metrics.port" ]]; then
    echo "METRICS FAILED: no metrics.port published" >&2
    cat "${workdir}/run.log" >&2
    exit 1
  fi
  port="$(cat "${dir}/metrics.port")"

  # Scrape while edits flow (the hold window guarantees the listener is
  # still up even if the storm finishes first).
  scrape() {
    curl -sf --max-time 5 "http://127.0.0.1:${port}$1"
  }
  # Wait for at least one applied batch to show up, then take the scrape.
  for _ in $(seq 1 100); do
    text="$(scrape /metrics || true)"
    batches="$(printf '%s\n' "${text}" | awk '$1 == "oneedit_serving_batches_total" {print $2}')"
    [[ -n "${batches:-}" && "${batches}" -ge 1 ]] && break
    sleep 0.1
  done
  printf '%s\n' "${text}" > "${workdir}/metrics.txt"
  scrape /metrics.json > "${workdir}/metrics.json"
  scrape "/traces?n=3" > "${workdir}/traces.txt"

  echo "--- scraped $(wc -l < "${workdir}/metrics.txt") metric lines from port ${port}"

  # Every ticker family must be present...
  for family in utterances edits_accepted serving_reads serving_submitted \
      serving_batches snapshots_published wal_records wal_commits \
      wal_failures checkpoints degraded_rejects health_transitions \
      scrub_passes scrub_corruptions_found repairs_completed \
      enospc_rejects tmp_files_swept; do
    if ! grep -q "^# TYPE oneedit_${family}_total counter$" "${workdir}/metrics.txt"; then
      echo "METRICS FAILED: missing ticker family oneedit_${family}_total" >&2
      exit 1
    fi
  done
  # ...and every histogram must expose its percentile quantiles.
  for family in serving_batch_size serving_queue_depth serving_latency_micros \
      serving_queue_wait_micros serving_read_micros \
      serving_read_lock_wait_micros wal_commit_micros; do
    for q in 0.5 0.95 0.99; do
      if ! grep -q "^oneedit_${family}{quantile=\"${q}\"}" "${workdir}/metrics.txt"; then
        echo "METRICS FAILED: missing quantile ${q} for oneedit_${family}" >&2
        exit 1
      fi
    done
  done
  # Health state machine exports as a one-hot gauge family.
  if ! grep -q '^oneedit_service_health{state="healthy"}' "${workdir}/metrics.txt"; then
    echo "METRICS FAILED: missing service_health gauge" >&2
    exit 1
  fi
  # Graph-cost profiler: the service runs with profiling on, so the scalar
  # gauges/counters must be present, the profiler must report enabled, and
  # (edits flowed before the scrape) the labeled top-K families must carry
  # at least one hot entity and relation row.
  if ! grep -q '^oneedit_profiler_enabled 1' "${workdir}/metrics.txt"; then
    echo "METRICS FAILED: profiler not enabled on a profiling service" >&2
    exit 1
  fi
  for gauge in profiler_entities_tracked profiler_relations_tracked; do
    if ! grep -q "^oneedit_${gauge} " "${workdir}/metrics.txt"; then
      echo "METRICS FAILED: missing gauge oneedit_${gauge}" >&2
      exit 1
    fi
  done
  for family in profiler_dropped profiler_aggregations; do
    if ! grep -q "^# TYPE oneedit_${family}_total counter$" "${workdir}/metrics.txt"; then
      echo "METRICS FAILED: missing counter family oneedit_${family}_total" >&2
      exit 1
    fi
  done
  for family in profiler_hot_entity_cost profiler_hot_entity_reads \
      profiler_hot_entity_edits profiler_expensive_rule_cost; do
    if ! grep -q "^# TYPE oneedit_${family} gauge$" "${workdir}/metrics.txt"; then
      echo "METRICS FAILED: missing labeled family oneedit_${family}" >&2
      exit 1
    fi
  done
  if ! grep -q '^oneedit_profiler_hot_entity_cost{entity="' "${workdir}/metrics.txt"; then
    echo "METRICS FAILED: no hot-entity rows despite applied edits" >&2
    exit 1
  fi
  if ! grep -q '^oneedit_profiler_expensive_rule_cost{relation="' "${workdir}/metrics.txt"; then
    echo "METRICS FAILED: no expensive-rule rows despite applied edits" >&2
    exit 1
  fi
  # The replication section is exported regardless of topology: a
  # standalone service reports role{standalone}=1 and zero lag.
  if ! grep -q '^oneedit_replication_role{role="standalone"} 1' "${workdir}/metrics.txt"; then
    echo "METRICS FAILED: missing one-hot replication_role gauge" >&2
    exit 1
  fi
  for gauge in replication_applied_sequence replication_lag_records \
      replication_lag_batches replication_lag_seconds \
      replication_followers_connected replication_min_follower_applied \
      snapshot_epoch snapshot_sequence snapshot_epoch_lag_records \
      snapshot_states_alive snapshot_states_retained \
      snapshot_reader_held_states; do
    if ! grep -q "^oneedit_${gauge} " "${workdir}/metrics.txt"; then
      echo "METRICS FAILED: missing gauge oneedit_${gauge}" >&2
      exit 1
    fi
  done
  # Snapshot publication keeps pace with the writer: every applied batch
  # publishes a state (plus the initial one), the epoch is the publication
  # count, and nothing holds retired states here (no reader handles are
  # pinned at scrape time, so the leak gauge must read 0).
  awk '
    $1 == "oneedit_serving_batches_total" {batches = $2}
    $1 == "oneedit_snapshots_published_total" {published = $2}
    $1 == "oneedit_snapshot_epoch" {epoch = $2}
    $1 == "oneedit_snapshot_reader_held_states" {held = $2}
    END {
      if (published + 0 < batches + 0) {
        printf "METRICS FAILED: snapshots_published (%d) < serving_batches (%d)\n", published, batches
        exit 1
      }
      if (epoch + 0 < 1) {
        printf "METRICS FAILED: snapshot_epoch is %d (nothing published?)\n", epoch
        exit 1
      }
      if (held + 0 != 0) {
        printf "METRICS FAILED: snapshot_reader_held_states is %d with no pinned readers\n", held
        exit 1
      }
    }' "${workdir}/metrics.txt"
  # /health carries the role line the failover runbook reads. Mid-storm the
  # service may legitimately be degraded (503), so fetch without -f: the
  # body carries the role line at every health state.
  curl -s --max-time 5 "http://127.0.0.1:${port}/health" > "${workdir}/health.txt"
  if ! grep -q '^role: standalone' "${workdir}/health.txt"; then
    echo "METRICS FAILED: /health missing replication role line" >&2
    cat "${workdir}/health.txt" >&2
    exit 1
  fi
  # Self-consistency: every applied batch carries >= 1 accepted edit, and
  # nothing is accepted outside a batch.
  awk '
    $1 == "oneedit_edits_accepted_total" {accepted = $2}
    $1 == "oneedit_serving_batches_total" {batches = $2}
    END {
      if (accepted + 0 < batches + 0) {
        printf "METRICS FAILED: edits_accepted (%d) < serving_batches (%d)\n", accepted, batches
        exit 1
      }
      if (batches + 0 < 1) {
        printf "METRICS FAILED: no serving batches recorded\n"
        exit 1
      }
    }' "${workdir}/metrics.txt"
  # The JSON twin parses and carries the same sections.
  python3 -c "
import json, sys
doc = json.load(open('${workdir}/metrics.json'))
assert 'counters' in doc and 'histograms' in doc, 'missing sections'
assert 'edits_accepted' in doc['counters'], 'missing counter'
assert doc['histograms']['serving_latency_micros']['count'] >= 1, 'no latency samples'
"
  if ! grep -q '^trace ' "${workdir}/traces.txt"; then
    echo "METRICS FAILED: /traces returned no traces" >&2
    cat "${workdir}/traces.txt" >&2
    exit 1
  fi

  if ! wait "${demo_pid}"; then
    echo "METRICS FAILED: chaos run under metrics exited nonzero" >&2
    cat "${workdir}/run.log" >&2
    exit 1
  fi
  # The storm's durability property must still hold with metrics on.
  "${demo}" --dir="${dir}" --verify

  # --- shard fleet export surface: examples/shard_demo drives a 3-shard
  # router (cross-shard 2PC + a tenant flood) and holds its listener up.
  shard_demo="${build_dir}/examples/shard_demo"
  shard_dir="${workdir}/shards"
  mkdir -p "${shard_dir}"
  "${shard_demo}" --dir="${shard_dir}" --shards=3 --metrics-port=0 \
    --hold-ms=8000 > "${workdir}/shard_run.log" 2>&1 &
  shard_pid=$!
  for _ in $(seq 1 300); do
    [[ -s "${shard_dir}/metrics.port" ]] && break
    sleep 0.1
  done
  if [[ ! -s "${shard_dir}/metrics.port" ]]; then
    echo "METRICS FAILED: shard_demo published no metrics.port" >&2
    cat "${workdir}/shard_run.log" >&2
    exit 1
  fi
  shard_port="$(cat "${shard_dir}/metrics.port")"
  shard_scrape() {
    curl -sf --max-time 5 "http://127.0.0.1:${shard_port}$1"
  }
  # Wait until the workload's cross-shard txns show up, then scrape.
  for _ in $(seq 1 300); do
    shard_text="$(shard_scrape /metrics || true)"
    txns="$(printf '%s\n' "${shard_text}" | awk '$1 == "oneedit_cross_shard_txns_total" {print $2}')"
    [[ -n "${txns:-}" && "${txns}" -ge 1 ]] && break
    sleep 0.1
  done
  printf '%s\n' "${shard_text}" > "${workdir}/shard_metrics.txt"
  shard_scrape /metrics.json > "${workdir}/shard_metrics.json"
  # Per-shard labeled families cover every shard; the tenant family carries
  # the flooded tenant; the 2PC counters are present and the workload
  # committed at least one cross-shard transaction.
  for shard in shard-0 shard-1 shard-2; do
    for family in shard_requests_total shard_edits_total shard_health; do
      if ! grep -q "^oneedit_${family}{shard=\"${shard}\"}" "${workdir}/shard_metrics.txt"; then
        echo "METRICS FAILED: missing oneedit_${family}{shard=\"${shard}\"}" >&2
        exit 1
      fi
    done
  done
  for family in cross_shard_txns_total cross_shard_aborts_total; do
    if ! grep -q "^# TYPE oneedit_${family} counter$" "${workdir}/shard_metrics.txt"; then
      echo "METRICS FAILED: missing counter family oneedit_${family}" >&2
      exit 1
    fi
  done
  if ! grep -q '^oneedit_tenant_quota_rejects_total{tenant="acme"}' "${workdir}/shard_metrics.txt"; then
    echo "METRICS FAILED: missing tenant_quota_rejects row for flooded tenant" >&2
    exit 1
  fi
  if [[ -z "${txns:-}" || "${txns}" -lt 1 ]]; then
    echo "METRICS FAILED: no cross-shard transactions recorded" >&2
    exit 1
  fi
  # The aggregate /health JSON and the placement join answer too.
  shard_scrape /health > "${workdir}/shard_health.json"
  if ! grep -q '"shards":\[' "${workdir}/shard_health.json"; then
    echo "METRICS FAILED: shard /health missing per-shard section" >&2
    cat "${workdir}/shard_health.json" >&2
    exit 1
  fi
  shard_scrape "/placement?k=4" > "${workdir}/shard_placement.json"
  python3 -c "
import json
doc = json.load(open('${workdir}/shard_placement.json'))
assert doc['version'] == 1, 'unexpected placement schema version'
assert len(doc['shards']) == 3, 'placement must list every shard'
doc2 = json.load(open('${workdir}/shard_metrics.json'))
assert 'counters' in doc2, 'shard metrics.json missing counters'
"
  if ! wait "${shard_pid}"; then
    echo "METRICS FAILED: shard_demo exited nonzero" >&2
    cat "${workdir}/shard_run.log" >&2
    exit 1
  fi
  echo "metrics smoke passed: full ticker/percentile export, consistent counters, shard fleet surface"
elif [[ "${matrix}" == "replication" ]]; then
  # Failover chaos: kill -9 the primary at every durability file operation
  # and prove a promoted follower serves every acknowledged edit. Each
  # round: two followers attach (one from an empty directory — the
  # snapshot-install path once the primary's WAL has rotated), the primary
  # writes with ack_replicas=2 (an acknowledgement implies both followers
  # journaled + applied the edit), and the armed failpoint _Exit(137)s it
  # mid-edit. The driver elects the most-caught-up follower by applied.seq,
  # promotes it via promote.flag, and the promoted process itself verifies
  # the dead primary's acked.txt and accepts a fresh write (exit 0).
  demo="${build_dir}/examples/replication_demo"
  workdir="$(mktemp -d)"
  trap 'rm -rf "${workdir}"' EXIT
  edits=8
  crash_points=24

  echo "--- replication failover: kill -9 primary at each of ${crash_points} file ops"
  for ((op = 0; op < crash_points; ++op)); do
    round="${workdir}/round-${op}"
    mkdir -p "${round}/primary" "${round}/f1" "${round}/f2"
    "${demo}" --role=follower --dir="${round}/f1" \
      --primary-dir="${round}/primary" --timeout-ms=60000 \
      > "${round}/f1.log" 2>&1 &
    f1_pid=$!
    "${demo}" --role=follower --dir="${round}/f2" \
      --primary-dir="${round}/primary" --timeout-ms=60000 \
      > "${round}/f2.log" 2>&1 &
    f2_pid=$!
    status=0
    "${demo}" --role=primary --dir="${round}/primary" --edits="${edits}" \
      --ack-replicas=2 --crash-at="${op}" \
      > "${round}/primary.log" 2>&1 || status=$?
    if [[ "${status}" -ne 137 && "${status}" -ne 0 ]]; then
      echo "primary round ${op} exited ${status} (want 137 or clean 0)" >&2
      cat "${round}/primary.log" "${round}/f1.log" "${round}/f2.log" >&2
      exit 1
    fi
    # Let in-flight applies settle, then elect the most-caught-up follower.
    sleep 0.5
    a1="$(cat "${round}/f1/applied.seq" 2>/dev/null || echo 0)"
    a2="$(cat "${round}/f2/applied.seq" 2>/dev/null || echo 0)"
    if [[ "${a1:-0}" -ge "${a2:-0}" ]]; then
      winner_dir="${round}/f1"; winner_pid=${f1_pid}; winner=f1
      loser_dir="${round}/f2"; loser_pid=${f2_pid}
    else
      winner_dir="${round}/f2"; winner_pid=${f2_pid}; winner=f2
      loser_dir="${round}/f1"; loser_pid=${f1_pid}
    fi
    touch "${loser_dir}/stop.flag" "${winner_dir}/promote.flag"
    if ! wait "${winner_pid}"; then
      echo "REPLICATION FAILED: promoted ${winner} (round ${op}) lost acknowledged edits" >&2
      cat "${round}/primary.log" "${winner_dir}/../${winner}.log" >&2
      exit 1
    fi
    wait "${loser_pid}" || true
    echo "round ${op}: primary exit=${status} applied f1=${a1} f2=${a2} promoted=${winner}"
  done
  echo "replication failover passed: ${crash_points} kill points, zero acknowledged-edit loss"
elif [[ "${matrix}" == "partition" ]]; then
  # Split-brain chaos: the in-process three-node group from
  # tests/partition_chaos_test.cc, driven through partition → dual-primary
  # writes → heal → reconcile for 10 deterministic seeds. A failing seed
  # prints in the SCOPED_TRACE and replays exactly with
  # ONEEDIT_PARTITION_ROUNDS pinned locally.
  ONEEDIT_PARTITION_ROUNDS=10 ctest -j "${jobs}" --output-on-failure \
    -R 'ReplicationPartitionTest'
  echo "partition chaos passed: 10 seeded dual-primary rounds, invariants held"
elif [[ "${matrix}" == "scenarios" ]]; then
  # Scenario matrix: every workload shape runs its invariants against the
  # live /metrics surface; the binary exits nonzero on the first violated
  # invariant, and the JSON artifact must agree.
  ./bench/scenario_bench
  python3 -c "
import json
doc = json.load(open('BENCH_scenarios.json'))
names = {s['scenario'] for s in doc['scenarios']}
want = {'zipf_read_storm', 'edit_burst', 'poison_storm', 'rolling_failover',
        'disk_full', 'rule_update'}
missing = want - names
assert not missing, f'scenarios missing from artifact: {missing}'
assert doc['pass'], 'scenario matrix artifact reports failure'
for s in doc['scenarios']:
    assert s['pass'] and not s['failed_invariants'], s['scenario']
"
  echo "scenario matrix passed: all invariants held (BENCH_scenarios.json)"
elif [[ "${matrix}" == "scrub" ]]; then
  # Storage-fault chaos: the deterministic scrub/repair suites (Env storage
  # primitives, injected disk budget, ENOSPC ladder, tmp sweeping, salvage
  # recovery, the bit-flip-at-every-offset scrubber property, and
  # replica-assisted WAL/checkpoint repair), then 10 seeded rounds of random
  # bit-rot + disk-full against a live primary+follower pair.
  ONEEDIT_SCRUB_ROUNDS=10 ctest -j "${jobs}" --output-on-failure \
    -R 'StorageEnvTest|DiskBudgetTest|DiskFullServiceTest|TmpSweepTest|SalvageRecoveryTest|ScrubberTest|RepairWireTest|ReplicaRepairTest|ScrubChaosTest'
  echo "scrub chaos passed: detection, repair, auto-heal, zero acknowledged-edit loss"
elif [[ "${matrix}" == "shard" ]]; then
  # Horizontal sharding: deterministic rendezvous/router/2PC suites, then
  # the seeded mixed-workload crash rounds. A failing round prints its
  # round index in the SCOPED_TRACE and replays exactly with
  # ONEEDIT_SHARD_ROUNDS pinned locally.
  ONEEDIT_SHARD_ROUNDS=10 ctest -j "${jobs}" --output-on-failure \
    -R 'RendezvousHashTest|ShardRouterTest|Shard2pcTest|ShardChaosTest'
  echo "shard suite passed: routing, quotas, 2PC failpoint sweep, 10 chaos rounds"
else
  ctest -j "${jobs}" --output-on-failure
fi
