#!/usr/bin/env bash
# CI driver: configure, build, and test one sanitizer matrix entry.
#
# Usage: scripts/ci.sh [default|tsan|asan]
#
#   default  Release-ish build, full ctest suite.
#   tsan     ThreadSanitizer build; runs the concurrency-sensitive tests
#            (serving_test) plus the core suite.
#   asan     Address+UB sanitizer build, full ctest suite.
#
# Each matrix entry gets its own build directory (build-ci-<name>) so local
# `build/` trees are never clobbered.
set -euo pipefail

matrix="${1:-default}"
jobs="$(nproc)"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${src_dir}/build-ci-${matrix}"

case "${matrix}" in
  default)
    flags=""
    build_type=Release
    ;;
  tsan)
    flags="-fsanitize=thread -fno-omit-frame-pointer"
    build_type=RelWithDebInfo
    ;;
  asan)
    flags="-fsanitize=address,undefined -fno-omit-frame-pointer"
    build_type=RelWithDebInfo
    ;;
  *)
    echo "unknown matrix entry: ${matrix} (want default|tsan|asan)" >&2
    exit 2
    ;;
esac

cmake -B "${build_dir}" -S "${src_dir}" \
  -DCMAKE_BUILD_TYPE="${build_type}" \
  -DCMAKE_CXX_FLAGS="${flags}" \
  -DCMAKE_EXE_LINKER_FLAGS="${flags}"
cmake --build "${build_dir}" -j "${jobs}"

cd "${build_dir}"
if [[ "${matrix}" == "tsan" ]]; then
  # TSan slows everything ~10x; run the concurrency tests (the reason this
  # entry exists) plus a smoke slice of the core suite.
  ctest -j "${jobs}" --output-on-failure \
    -R 'EditServiceTest|ConcurrentOneEditTest|OneEditTest'
else
  ctest -j "${jobs}" --output-on-failure
fi
