#!/usr/bin/env bash
# CI driver: configure, build, and test one sanitizer matrix entry.
#
# Usage: scripts/ci.sh [default|tsan|asan|recovery|chaos]
#
#   default   Release-ish build, full ctest suite.
#   tsan      ThreadSanitizer build; runs the concurrency-sensitive tests
#             (serving_test, durability degraded-mode) plus the core suite.
#   asan      Address+UB sanitizer build, full ctest suite.
#   recovery  Crash-recovery smoke: run the example workload, kill -9 the
#             process (via the fault-injecting Env's _Exit(137)) at every
#             file operation in turn, restart, and verify no acknowledged
#             edit was lost.
#   chaos     Serving stress under random intermittent WAL faults: each
#             durability op independently fails with probability p while
#             client threads submit edits; the service must flap through
#             degraded mode, auto-heal back to healthy once the faults
#             stop, and a fresh process must recover every acknowledged
#             edit. Runs over several seeds.
#
# Each matrix entry gets its own build directory (build-ci-<name>) so local
# `build/` trees are never clobbered.
set -euo pipefail

matrix="${1:-default}"
jobs="$(nproc)"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${src_dir}/build-ci-${matrix}"

case "${matrix}" in
  default)
    flags=""
    build_type=Release
    ;;
  tsan)
    flags="-fsanitize=thread -fno-omit-frame-pointer"
    build_type=RelWithDebInfo
    ;;
  asan)
    flags="-fsanitize=address,undefined -fno-omit-frame-pointer"
    build_type=RelWithDebInfo
    ;;
  recovery)
    flags=""
    build_type=Release
    ;;
  chaos)
    flags=""
    build_type=Release
    ;;
  *)
    echo "unknown matrix entry: ${matrix} (want default|tsan|asan|recovery|chaos)" >&2
    exit 2
    ;;
esac

cmake -B "${build_dir}" -S "${src_dir}" \
  -DCMAKE_BUILD_TYPE="${build_type}" \
  -DCMAKE_CXX_FLAGS="${flags}" \
  -DCMAKE_EXE_LINKER_FLAGS="${flags}"
cmake --build "${build_dir}" -j "${jobs}"

cd "${build_dir}"
if [[ "${matrix}" == "tsan" ]]; then
  # TSan slows everything ~10x; run the concurrency tests (the reason this
  # entry exists) plus a smoke slice of the core suite.
  ctest -j "${jobs}" --output-on-failure \
    -R 'EditServiceTest|EditServiceShutdownTest|ServiceSelfHealTest|ConcurrentOneEditTest|OneEditTest|EditServiceDurabilityTest'
elif [[ "${matrix}" == "recovery" ]]; then
  # Crash-recovery smoke. A clean run of the workload performs ~20 file ops
  # (WAL appends, fsyncs, checkpoint writes, renames, rotations); kill the
  # process at each one, restart, and demand every acknowledged edit back.
  demo="${build_dir}/examples/recovery_demo"
  workdir="$(mktemp -d)"
  trap 'rm -rf "${workdir}"' EXIT
  edits=6

  echo "--- recovery smoke: clean run + verify"
  "${demo}" --dir="${workdir}/clean" --edits="${edits}"
  "${demo}" --dir="${workdir}/clean" --verify

  # Upper-bound the failpoint count from the clean run's wal/checkpoint
  # tickers; iterating past the last real op just yields uneventful runs.
  crash_points=24
  echo "--- recovery smoke: kill -9 at each of ${crash_points} file ops"
  for ((op = 0; op < crash_points; ++op)); do
    dir="${workdir}/crash-${op}"
    status=0
    "${demo}" --dir="${dir}" --edits="${edits}" --crash-at="${op}" \
      --hard-crash > "${workdir}/crash-${op}.log" 2>&1 || status=$?
    if [[ "${status}" -ne 137 && "${status}" -ne 0 ]]; then
      echo "crash run ${op} exited ${status} (want 137 or clean 0)" >&2
      cat "${workdir}/crash-${op}.log" >&2
      exit 1
    fi
    if ! "${demo}" --dir="${dir}" --verify > "${workdir}/verify-${op}.log" 2>&1; then
      echo "RECOVERY FAILED after crash at file op ${op}" >&2
      cat "${workdir}/verify-${op}.log" >&2
      exit 1
    fi
  done
  echo "recovery smoke passed: ${crash_points} kill points, no acknowledged edit lost"
elif [[ "${matrix}" == "chaos" ]]; then
  # Fault-injection stress: intermittent WAL failures while concurrent
  # clients write. Two properties, per seed: (1) the service auto-heals —
  # the run exits nonzero if it is not healthy (and writable) once the
  # faults clear; (2) zero acknowledged-edit loss — a pristine process
  # recovers the directory and demands every acked edit back.
  demo="${build_dir}/examples/chaos_demo"
  workdir="$(mktemp -d)"
  trap 'rm -rf "${workdir}"' EXIT

  for seed in 1 2 3; do
    dir="${workdir}/seed-${seed}"
    echo "--- chaos stress: seed ${seed}, fault p=0.25"
    if ! "${demo}" --dir="${dir}" --fault-p=0.25 --seed="${seed}" \
        --clients=4 --edits-per-client=6 > "${workdir}/run-${seed}.log" 2>&1; then
      echo "CHAOS RUN FAILED (seed ${seed})" >&2
      cat "${workdir}/run-${seed}.log" >&2
      exit 1
    fi
    cat "${workdir}/run-${seed}.log"
    if ! "${demo}" --dir="${dir}" --verify > "${workdir}/verify-${seed}.log" 2>&1; then
      echo "CHAOS VERIFY FAILED (seed ${seed})" >&2
      cat "${workdir}/verify-${seed}.log" >&2
      exit 1
    fi
    cat "${workdir}/verify-${seed}.log"
  done
  echo "chaos stress passed: 3 seeds, auto-heal + zero acknowledged-edit loss"
else
  ctest -j "${jobs}" --output-on-failure
fi
