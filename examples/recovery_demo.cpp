// Recovery demo: the crash-safety subsystem end to end, runnable as a CI
// smoke test. In `run` mode it stands up an EditService with a
// DurabilityManager, optionally arms a fault-injecting Env to kill the
// process (exit 137, like SIGKILL) at the N-th file operation, and submits a
// stream of edits — appending each acknowledged edit to <dir>/acked.txt
// (fsynced scaffolding, so a later process knows what was promised). In
// `--verify` mode it boots a pristine world, recovers from <dir>, and fails
// loudly if any previously acknowledged edit is missing.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/recovery_demo --dir=/tmp/oneedit_recovery --edits=6
//   ./build/examples/recovery_demo --dir=/tmp/oneedit_recovery \
//       --edits=6 --crash-at=9 --hard-crash   # dies with exit code 137
//   ./build/examples/recovery_demo --dir=/tmp/oneedit_recovery --verify
//
// scripts/ci.sh's `recovery` job loops --crash-at over every file op of the
// workload and runs --verify after each kill.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "serving/edit_service.h"

using oneedit::BuildAmericanPoliticians;
using oneedit::Dataset;
using oneedit::DatasetOptions;
using oneedit::EditingMethodKind;
using oneedit::EditRequest;
using oneedit::EditResult;
using oneedit::EditResultKindName;
using oneedit::LanguageModel;
using oneedit::OneEditConfig;
using oneedit::OneEditSystem;
using oneedit::durability::DurabilityManager;
using oneedit::durability::DurabilityOptions;
using oneedit::durability::Env;
using oneedit::durability::FaultInjectingEnv;
using oneedit::durability::RecoveryReport;
using oneedit::serving::EditService;
using oneedit::serving::EditServiceOptions;
using oneedit::serving::ServiceHealthName;

namespace {

struct Args {
  std::string dir = "/tmp/oneedit_recovery";
  size_t edits = 6;
  long crash_at = -1;
  bool hard_crash = false;
  bool verify = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return std::strncmp(arg.c_str(), prefix, std::strlen(prefix)) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = value("--dir=")) {
      args->dir = v;
    } else if (const char* v = value("--edits=")) {
      args->edits = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--crash-at=")) {
      args->crash_at = std::stol(v);
    } else if (arg == "--hard-crash") {
      args->hard_crash = true;
    } else if (arg == "--verify") {
      args->verify = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: recovery_demo [--dir=PATH] [--edits=N] "
                   "[--crash-at=N] [--hard-crash] [--verify]\n";
      return false;
    }
  }
  return true;
}

struct World {
  Dataset dataset;
  std::unique_ptr<LanguageModel> model;

  World() : dataset(BuildAmericanPoliticians(DatasetOptions{})) {
    model = std::make_unique<LanguageModel>(oneedit::Gpt2XlSimConfig(),
                                            dataset.vocab);
    model->Pretrain(dataset.pretrain_facts);
  }

  OneEditConfig Config() const {
    OneEditConfig config;
    config.method = EditingMethodKind::kGrace;
    config.interpreter.extraction_error_rate = 0.0;
    return config;
  }
};

/// Durably appends one acknowledged edit to the side ledger the verifier
/// reads. Uses raw O_APPEND + fsync: the ledger must survive the same kill
/// the WAL survives, or verification would under-count promises.
void RecordAck(const std::string& dir, size_t index,
               const oneedit::NamedTriple& edit) {
  const std::string path = dir + "/acked.txt";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  std::ostringstream line;
  line << index << '\t' << edit.subject << '\t' << edit.relation << '\t'
       << edit.object << '\n';
  const std::string bytes = line.str();
  (void)!::write(fd, bytes.data(), bytes.size());
  (void)::fsync(fd);
  (void)::close(fd);
}

int Run(const Args& args) {
  World world;
  FaultInjectingEnv fault(Env::Default());
  DurabilityOptions durability_options;
  durability_options.dir = args.dir;
  durability_options.checkpoint_interval = 2;
  if (args.crash_at >= 0) durability_options.env = &fault;

  auto manager = DurabilityManager::Open(durability_options);
  if (!manager.ok()) {
    std::cerr << "durability setup failed: " << manager.status().ToString()
              << "\n";
    return 1;
  }
  EditServiceOptions options;
  options.durability = manager->get();
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     world.Config(), options);
  if (!service.ok()) {
    std::cerr << "service setup failed: " << service.status().ToString()
              << "\n";
    return 1;
  }
  const RecoveryReport& report = (*service)->recovery_report();
  std::cout << "recovered: checkpoint_loaded=" << report.checkpoint_loaded
            << " replayed=" << report.replayed_records
            << " last_sequence=" << report.last_sequence << "\n";

  if (args.crash_at >= 0) {
    fault.set_exit_on_crash(args.hard_crash);
    fault.CrashAt(args.crash_at);
    std::cout << "armed crash at file op " << args.crash_at
              << (args.hard_crash ? " (hard: _Exit(137))" : " (soft)")
              << "\n";
  }

  size_t applied = 0;
  for (size_t i = 0; i < args.edits && i < world.dataset.cases.size(); ++i) {
    const auto& edit = world.dataset.cases[i].edit;
    const auto result =
        (*service)->SubmitAndWait(EditRequest::Edit(edit, "demo"));
    const bool ok = result.ok() && result->kind == EditResult::Kind::kEdited;
    std::cout << "edit " << i << " (" << edit.subject << " -> " << edit.object
              << "): "
              << (result.ok() ? EditResultKindName(result->kind)
                              : result.status().ToString())
              << "\n";
    if (ok) {
      RecordAck(args.dir, i, edit);
      ++applied;
    }
  }
  std::cout << "applied " << applied << "/" << args.edits << " edits, health "
            << ServiceHealthName((*service)->health()) << "\n"
            << "stats: " << (*service)->statistics().ToString() << "\n";
  return 0;
}

int Verify(const Args& args) {
  World world;
  auto system = OneEditSystem::Create(&world.dataset.kg, world.model.get(),
                                      world.Config());
  if (!system.ok()) {
    std::cerr << "system setup failed: " << system.status().ToString() << "\n";
    return 1;
  }
  DurabilityOptions durability_options;
  durability_options.dir = args.dir;
  auto manager = DurabilityManager::Open(durability_options);
  if (!manager.ok()) {
    std::cerr << "durability setup failed: " << manager.status().ToString()
              << "\n";
    return 1;
  }
  const auto report = (*manager)->Recover(system->get());
  if (!report.ok()) {
    std::cerr << "RECOVERY FAILED: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "recovered: checkpoint_loaded=" << report->checkpoint_loaded
            << " skipped=" << report->skipped_records
            << " replayed=" << report->replayed_records
            << " torn_bytes_dropped=" << report->torn_bytes_dropped
            << " last_sequence=" << report->last_sequence << "\n";

  std::ifstream acked(args.dir + "/acked.txt");
  std::string line;
  size_t promised = 0, lost = 0;
  while (std::getline(acked, line)) {
    std::istringstream fields(line);
    std::string index, subject, relation, object;
    if (!std::getline(fields, index, '\t') ||
        !std::getline(fields, subject, '\t') ||
        !std::getline(fields, relation, '\t') ||
        !std::getline(fields, object, '\t')) {
      continue;  // torn ledger tail from the kill — never acknowledged
    }
    ++promised;
    const std::string got = (*system)->Ask(subject, relation).entity;
    if (got != object) {
      ++lost;
      std::cerr << "LOST acknowledged edit " << index << ": (" << subject
                << ", " << relation << ") is '" << got << "', promised '"
                << object << "'\n";
    }
  }
  std::cout << "verified " << promised << " acknowledged edits, " << lost
            << " lost\n";
  return lost == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  return args.verify ? Verify(args) : Run(args);
}
