// Faculty-registry scenario on the academic-figures domain: a department
// administrator records a professor's move to another university and an
// advisor change, then persists the symbolic store. Demonstrates: reverse
// conflicts on `employs`/`advisee`, rule-driven derived facts (trained_at /
// works_in_city / research_lineage), WAL persistence and crash recovery.
//
//   ./build/examples/academic_registry

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/oneedit.h"
#include "data/dataset.h"
#include "model/model_config.h"

using namespace oneedit;

namespace {

void Ask(OneEditSystem& system, const std::string& subject,
         const std::string& relation) {
  std::cout << "    " << relation << "(" << subject << ") = "
            << system.Ask(subject, relation).entity << "\n";
}

}  // namespace

int main() {
  const std::string wal_path =
      (std::filesystem::temp_directory_path() / "academic_registry.wal")
          .string();
  std::remove(wal_path.c_str());

  DatasetOptions options;
  options.num_cases = 8;
  Dataset dataset = BuildAcademicFigures(options);

  // Nightly backup (snapshot) + journal for every mutation from here on:
  // recovery is snapshot + WAL replay.
  const std::string base_snapshot =
      (std::filesystem::temp_directory_path() / "academic_registry.base")
          .string();
  if (!dataset.kg.SaveSnapshot(base_snapshot).ok() ||
      !dataset.kg.AttachWal(wal_path, /*replay_existing=*/true).ok()) {
    std::cerr << "cannot set up persistence\n";
    return 1;
  }

  LanguageModel model(Qwen2SimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  OneEditConfig config;
  config.method = EditingMethodKind::kMemit;
  config.interpreter.extraction_error_rate = 0.0;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  if (!system.ok()) {
    std::cerr << system.status().ToString() << "\n";
    return 1;
  }

  // An affiliation case: the professor moves to another university.
  const EditCase* move_case = nullptr;
  for (const EditCase& edit_case : dataset.cases) {
    if (edit_case.edit.relation == "affiliated_with") {
      move_case = &edit_case;
      break;
    }
  }
  if (move_case == nullptr) {
    std::cerr << "no affiliation case generated\n";
    return 1;
  }
  const std::string& prof = move_case->edit.subject;
  const std::string& new_univ = move_case->edit.object;

  std::cout << "=== Faculty registry ===\n\n";
  std::cout << "Professor " << prof << " is moving to " << new_univ << ".\n\n";
  std::cout << "Before:\n";
  Ask(**system, prof, "affiliated_with");
  Ask(**system, prof, "works_in_city");
  Ask(**system, new_univ, "employs");

  std::cout << "\nAdmin: \"Update the affiliated with of " << prof << " to "
            << new_univ << ".\"\n";
  const auto response = (*system)->HandleUtterance(
      "Update the affiliated with of " + prof + " to " + new_univ + ".",
      "admin");
  if (!response.ok() || !response->report.has_value()) {
    std::cerr << "edit failed\n";
    return 1;
  }
  std::cout << "  -> " << response->message << "\n";
  std::cout << "  conflicts resolved: "
            << response->plan().rollbacks.size()
            << " (the university's previous chair was displaced)\n";

  std::cout << "\nAfter:\n";
  Ask(**system, prof, "affiliated_with");
  Ask(**system, prof, "works_in_city");  // follows via the works-in-city rule
  Ask(**system, new_univ, "employs");    // reverse relation maintained

  // Persist and simulate a restart: replay the WAL into a fresh graph.
  if (!dataset.kg.SyncWal().ok()) {
    std::cerr << "WAL sync failed\n";
    return 1;
  }
  std::cout << "\n=== Simulated restart: snapshot + WAL replay ===\n";
  KnowledgeGraph recovered;
  if (!recovered.LoadSnapshot(base_snapshot).ok() ||
      !recovered.AttachWal(wal_path, /*replay_existing=*/true).ok()) {
    std::cerr << "recovery failed\n";
    return 1;
  }
  const auto moved = recovered.Resolve({prof, "affiliated_with", new_univ});
  std::cout << "  recovered graph has " << recovered.size() << " triples; "
            << "contains the move: "
            << (moved.ok() && recovered.Contains(*moved) ? "yes" : "no")
            << "\n";

  // Snapshots provide compaction.
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "academic_registry.snapshot")
          .string();
  if (recovered.SaveSnapshot(snapshot_path).ok()) {
    KnowledgeGraph compacted;
    (void)compacted.LoadSnapshot(snapshot_path);
    std::cout << "  snapshot round-trip: " << compacted.size()
              << " triples\n";
    std::remove(snapshot_path.c_str());
  }
  std::remove(wal_path.c_str());
  std::remove(base_snapshot.c_str());
  return 0;
}
