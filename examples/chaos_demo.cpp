// Chaos demo: serving stress under random intermittent WAL faults, runnable
// as a CI job. In `run` mode it stands up an EditService with a
// DurabilityManager whose Env fails each durability operation independently
// with probability p (seeded, so every CI run is reproducible). Client
// threads submit edits while a reader thread hammers Ask; the service is
// expected to flap between healthy and read-only degraded as faults land,
// with the half-open auto-heal probe promoting it back. Every acknowledged
// edit is appended to <dir>/acked.txt (fsynced, same scaffolding as
// recovery_demo). After the storm the faults are cleared, the run fails
// unless auto-heal returns the service to healthy and a final write goes
// through. In `--verify` mode a pristine world recovers from <dir> and
// fails loudly if any previously acknowledged edit is missing: acknowledged
// implies durable, no matter how the I/O stack misbehaved.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/chaos_demo --dir=/tmp/oneedit_chaos --fault-p=0.25
//       (plus --seed=N --clients=N --edits-per-client=N as needed)
//   ./build/examples/chaos_demo --dir=/tmp/oneedit_chaos --verify
//
// scripts/ci.sh's `chaos` job runs this over several seeds.

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "serving/edit_service.h"

using oneedit::BuildAmericanPoliticians;
using oneedit::Dataset;
using oneedit::DatasetOptions;
using oneedit::EditingMethodKind;
using oneedit::EditRequest;
using oneedit::EditResult;
using oneedit::LanguageModel;
using oneedit::OneEditConfig;
using oneedit::OneEditSystem;
using oneedit::durability::DurabilityManager;
using oneedit::durability::DurabilityOptions;
using oneedit::durability::Env;
using oneedit::durability::FaultInjectingEnv;
using oneedit::serving::EditService;
using oneedit::serving::EditServiceOptions;
using oneedit::serving::ServiceHealth;
using oneedit::serving::ServiceHealthName;

namespace {

struct Args {
  std::string dir = "/tmp/oneedit_chaos";
  double fault_p = 0.25;
  uint64_t seed = 1;
  size_t clients = 4;
  size_t edits_per_client = 6;
  bool verify = false;
  /// >= 0 starts the service's metrics listener on this port (0 =
  /// ephemeral); the bound port is written to <dir>/metrics.port so a
  /// scraper can find it. -1 (default) leaves the listener off.
  int metrics_port = -1;
  /// Keep the service (and its metrics listener) alive this long after the
  /// storm settles — the scrape window for ci.sh's metrics job.
  size_t hold_ms = 0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return std::strncmp(arg.c_str(), prefix, std::strlen(prefix)) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = value("--dir=")) {
      args->dir = v;
    } else if (const char* v = value("--fault-p=")) {
      args->fault_p = std::stod(v);
    } else if (const char* v = value("--seed=")) {
      args->seed = std::stoull(v);
    } else if (const char* v = value("--clients=")) {
      args->clients = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--edits-per-client=")) {
      args->edits_per_client = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--metrics-port=")) {
      args->metrics_port = std::stoi(v);
    } else if (const char* v = value("--hold-ms=")) {
      args->hold_ms = static_cast<size_t>(std::stoul(v));
    } else if (arg == "--verify") {
      args->verify = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: chaos_demo [--dir=PATH] [--fault-p=P] [--seed=N] "
                   "[--clients=N] [--edits-per-client=N] [--metrics-port=N] "
                   "[--hold-ms=N] [--verify]\n";
      return false;
    }
  }
  return true;
}

struct World {
  Dataset dataset;
  std::unique_ptr<LanguageModel> model;

  World() : dataset(BuildAmericanPoliticians(DatasetOptions{})) {
    model = std::make_unique<LanguageModel>(oneedit::Gpt2XlSimConfig(),
                                            dataset.vocab);
    model->Pretrain(dataset.pretrain_facts);
  }

  OneEditConfig Config() const {
    OneEditConfig config;
    config.method = EditingMethodKind::kGrace;
    config.interpreter.extraction_error_rate = 0.0;
    return config;
  }
};

/// Durably appends one acknowledged edit to the side ledger the verifier
/// reads (same contract as recovery_demo: the ledger must survive anything
/// the WAL survives). Serialized across client threads.
void RecordAck(const std::string& dir, size_t index,
               const oneedit::NamedTriple& edit) {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  const std::string path = dir + "/acked.txt";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  std::ostringstream line;
  line << index << '\t' << edit.subject << '\t' << edit.relation << '\t'
       << edit.object << '\n';
  const std::string bytes = line.str();
  (void)!::write(fd, bytes.data(), bytes.size());
  (void)::fsync(fd);
  (void)::close(fd);
}

int Run(const Args& args) {
  World world;
  FaultInjectingEnv fault(Env::Default());
  DurabilityOptions durability_options;
  durability_options.dir = args.dir;
  durability_options.checkpoint_interval = 2;
  durability_options.env = &fault;

  auto manager = DurabilityManager::Open(durability_options);
  if (!manager.ok()) {
    std::cerr << "durability setup failed: " << manager.status().ToString()
              << "\n";
    return 1;
  }
  EditServiceOptions options;
  options.durability = manager->get();
  // Probe aggressively so the service re-heals inside the storm, not just
  // after it — the flapping is the point of the exercise.
  options.self_heal.heal_probe_interval = std::chrono::milliseconds(5);
  if (args.metrics_port >= 0) {
    options.expose_metrics = true;
    options.metrics_port = static_cast<uint16_t>(args.metrics_port);
  }
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     world.Config(), options);
  if (!service.ok()) {
    std::cerr << "service setup failed: " << service.status().ToString()
              << "\n";
    return 1;
  }
  if (args.metrics_port >= 0) {
    const auto* listener = (*service)->metrics_server();
    if (listener == nullptr) {
      std::cerr << "CHAOS FAILED: metrics listener did not start\n";
      return 1;
    }
    std::ofstream port_file(args.dir + "/metrics.port");
    port_file << listener->port() << "\n";
    port_file.close();
    std::cout << "metrics: http://" << listener->address() << "/metrics\n";
  }

  // The storm starts only after a clean boot: intermittent faults during
  // Open/recovery model a different failure (operator territory), and the
  // chaos property under test is about the serving write path.
  fault.SetIntermittent(args.fault_p, args.seed);
  std::cout << "chaos armed: p=" << args.fault_p << " seed=" << args.seed
            << "\n";

  std::atomic<size_t> acked{0}, rejected{0}, other{0};
  std::atomic<bool> reading{true};
  // A reader hammers the shared-lock path throughout the storm; degraded
  // mode must keep reads up.
  std::thread reader([&] {
    size_t i = 0;
    while (reading.load()) {
      const auto& probe =
          world.dataset.cases[i++ % world.dataset.cases.size()].edit;
      (void)(*service)->GetSnapshot()->Ask(probe.subject, probe.relation);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> clients;
  for (size_t c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < args.edits_per_client; ++i) {
        const size_t index = c * args.edits_per_client + i;
        if (index >= world.dataset.cases.size()) break;
        const auto& edit = world.dataset.cases[index].edit;
        // Degraded-mode rejections apply nothing, so clients retry them —
        // the realistic behavior, and it interleaves acknowledgements with
        // the health flapping instead of giving up on the first squall.
        bool done = false;
        for (size_t attempt = 0; attempt < 40 && !done; ++attempt) {
          const auto result =
              (*service)->SubmitAndWait(EditRequest::Edit(edit, "chaos"));
          if (result.ok() && result->kind == EditResult::Kind::kEdited) {
            RecordAck(args.dir, index, edit);
            ++acked;
            done = true;
          } else if (result.ok() &&
                     result->kind == EditResult::Kind::kRejected) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          } else {
            done = true;  // unexpected: counted, not retried
            ++other;
          }
        }
        if (!done) ++rejected;
      }
    });
  }
  for (auto& client : clients) client.join();
  reading.store(false);
  reader.join();

  // Calm the I/O stack and let the half-open probe promote the service.
  fault.Clear();
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*service)->health() != ServiceHealth::kHealthy &&
         std::chrono::steady_clock::now() < heal_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const auto transitions = (*service)->health_log();
  std::cout << "storm over: acked=" << acked.load()
            << " rejected=" << rejected.load() << " other=" << other.load()
            << " injected_faults=" << fault.transient_failures()
            << " health_transitions=" << transitions.size() << " health="
            << ServiceHealthName((*service)->health()) << "\n";

  int failures = 0;
  if (fault.transient_failures() == 0 && args.fault_p > 0.0) {
    std::cerr << "CHAOS FAILED: no faults were injected — the storm tested "
                 "nothing\n";
    ++failures;
  }
  if ((*service)->health() != ServiceHealth::kHealthy) {
    std::cerr << "CHAOS FAILED: service did not auto-heal after the storm\n";
    ++failures;
  }
  // Prove the healed service accepts writes again: one more edit, which the
  // verifier will also demand back.
  const size_t final_index = args.clients * args.edits_per_client;
  if (final_index < world.dataset.cases.size()) {
    const auto& edit = world.dataset.cases[final_index].edit;
    const auto result =
        (*service)->SubmitAndWait(EditRequest::Edit(edit, "chaos"));
    if (result.ok() && result->kind == EditResult::Kind::kEdited) {
      RecordAck(args.dir, final_index, edit);
    } else {
      std::cerr << "CHAOS FAILED: post-heal edit did not apply: "
                << (result.ok() ? result->message
                                : result.status().ToString())
                << "\n";
      ++failures;
    }
  }
  (*service)->Drain();
  if (args.hold_ms > 0) {
    // Scrape window: ci.sh curls /metrics while the listener is still up.
    std::cout << "holding for " << args.hold_ms << " ms\n" << std::flush;
    std::this_thread::sleep_for(std::chrono::milliseconds(args.hold_ms));
  }
  return failures == 0 ? 0 : 1;
}

int Verify(const Args& args) {
  World world;
  auto system = OneEditSystem::Create(&world.dataset.kg, world.model.get(),
                                      world.Config());
  if (!system.ok()) {
    std::cerr << "system setup failed: " << system.status().ToString() << "\n";
    return 1;
  }
  DurabilityOptions durability_options;
  durability_options.dir = args.dir;
  auto manager = DurabilityManager::Open(durability_options);
  if (!manager.ok()) {
    std::cerr << "durability setup failed: " << manager.status().ToString()
              << "\n";
    return 1;
  }
  const auto report = (*manager)->Recover(system->get());
  if (!report.ok()) {
    std::cerr << "RECOVERY FAILED: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "recovered: checkpoint_loaded=" << report->checkpoint_loaded
            << " skipped=" << report->skipped_records
            << " replayed=" << report->replayed_records
            << " torn_bytes_dropped=" << report->torn_bytes_dropped
            << " last_sequence=" << report->last_sequence << "\n";

  std::ifstream acked(args.dir + "/acked.txt");
  std::string line;
  size_t promised = 0, lost = 0;
  while (std::getline(acked, line)) {
    std::istringstream fields(line);
    std::string index, subject, relation, object;
    if (!std::getline(fields, index, '\t') ||
        !std::getline(fields, subject, '\t') ||
        !std::getline(fields, relation, '\t') ||
        !std::getline(fields, object, '\t')) {
      continue;
    }
    ++promised;
    const std::string got = (*system)->Ask(subject, relation).entity;
    if (got != object) {
      ++lost;
      std::cerr << "LOST acknowledged edit " << index << ": (" << subject
                << ", " << relation << ") is '" << got << "', promised '"
                << object << "'\n";
    }
  }
  std::cout << "verified " << promised << " acknowledged edits, " << lost
            << " lost\n";
  if (promised == 0) {
    std::cerr << "CHAOS VERIFY FAILED: nothing was acknowledged — the run "
                 "proved nothing\n";
    return 1;
  }
  return lost == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  return args.verify ? Verify(args) : Run(args);
}
