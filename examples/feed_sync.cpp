// Data-feed synchronization: ingest a TSV feed of facts (the shape a
// downstream user's pipeline would produce — Wikidata dumps, CMS exports),
// diff it against the knowledge graph, and push every change through
// OneEdit so the symbolic store and the model stay in lockstep.
//
// The feed is written by this example itself (three changed facts, one
// already-known fact, one brand-new fact), then ingested line by line.
//
//   ./build/examples/feed_sync

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/oneedit.h"
#include "data/dataset.h"
#include "model/model_config.h"
#include "util/string_util.h"

using namespace oneedit;

int main() {
  DatasetOptions options;
  options.num_cases = 8;
  Dataset dataset = BuildAmericanPoliticians(options);
  LanguageModel model(GptJSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  OneEditConfig config;
  config.method = EditingMethodKind::kMemit;
  config.interpreter.extraction_error_rate = 0.0;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  if (!system.ok()) {
    std::cerr << system.status().ToString() << "\n";
    return 1;
  }

  // ---- produce a feed: subject \t relation \t object per line ----
  const std::string feed_path =
      (std::filesystem::temp_directory_path() / "oneedit_feed.tsv").string();
  {
    std::ofstream feed(feed_path, std::ios::trunc);
    const EditCase& a = dataset.cases[0];
    const EditCase& b = dataset.cases[1];
    const EditCase& c = dataset.cases[2];
    // Two changed facts, one no-op (already true), one new slot.
    feed << a.edit.subject << '\t' << a.edit.relation << '\t'
         << a.edit.object << '\n';
    feed << b.edit.subject << '\t' << b.edit.relation << '\t'
         << b.edit.object << '\n';
    feed << c.edit.subject << '\t' << c.edit.relation << '\t'
         << c.old_object << '\n';  // already known
    feed << a.edit.object << '\t' << "alma_mater" << '\t'
         << "Northgate University" << '\n';  // brand-new knowledge
  }

  // ---- ingest: diff each record against the KG, edit when it differs ----
  std::cout << "=== Syncing feed " << feed_path << " ===\n";
  std::ifstream feed(feed_path);
  std::string line;
  size_t applied = 0, already_known = 0, failed = 0;
  while (std::getline(feed, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 3) {
      std::cout << "  skipping malformed record: " << line << "\n";
      continue;
    }
    const NamedTriple fact{fields[0], fields[1], fields[2]};
    const auto report = (*system)->EditTriple(fact, "feed-bot");
    if (!report.ok()) {
      std::cout << "  FAILED (" << fact.subject << ", " << fact.relation
                << ", " << fact.object << "): "
                << report.status().ToString() << "\n";
      ++failed;
      continue;
    }
    if (report->plan().no_op) {
      std::cout << "  already known: (" << fact.subject << ", "
                << fact.relation << ", " << fact.object << ")\n";
      ++already_known;
    } else {
      std::cout << "  applied: (" << fact.subject << ", " << fact.relation
                << ", " << fact.object << ")  [" << report->plan().rollbacks.size()
                << " conflicts resolved, " << report->plan().augmentations.size()
                << " generation triples]\n";
      ++applied;
    }
  }

  std::cout << "\nSync complete: " << applied << " applied, "
            << already_known << " already known, " << failed << " failed.\n";
  std::cout << "System statistics: " << (*system)->statistics().ToString()
            << "\n";

  // Spot-check that model answers track the feed.
  const EditCase& a = dataset.cases[0];
  std::cout << "\nSpot check: " << a.edit.relation << "(" << a.edit.subject
            << ") = " << (*system)->Ask(a.edit.subject, a.edit.relation).entity
            << " (feed says " << a.edit.object << ")\n";
  std::remove(feed_path.c_str());
  return 0;
}
