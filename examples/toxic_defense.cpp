// Crowdsourced-editing defense scenario (§3.4.1, Limitations): a malicious
// user tries to poison the shared model. Two layers of defense are shown:
//  1. the SecurityGuard blocklist screens edits before they reach the model;
//  2. edits that slip through are reverted wholesale with
//     RollbackUserEdits, using the cached edit parameters.
//
//   ./build/examples/toxic_defense

#include <iostream>

#include "core/oneedit.h"
#include "data/dataset.h"
#include "model/model_config.h"

using namespace oneedit;

namespace {

void Ask(OneEditSystem& system, const std::string& subject,
         const std::string& relation) {
  std::cout << "    " << relation << "(" << subject << ") = "
            << system.Ask(subject, relation).entity << "\n";
}

}  // namespace

int main() {
  DatasetOptions options;
  options.num_cases = 8;
  Dataset dataset = BuildAmericanPoliticians(options);

  LanguageModel model(GptJSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  if (!system.ok()) {
    std::cerr << system.status().ToString() << "\n";
    return 1;
  }

  const EditCase& case0 = dataset.cases[0];
  const EditCase& case1 = dataset.cases[1];
  const std::string& state = case0.edit.subject;

  std::cout << "=== Defending a crowdsourced knowledge base ===\n\n";

  // ---- Defense 1: screening ----
  // Pick a blocklist target that none of the later (legitimate-looking)
  // edits use, so the two defenses stay independent in the demo.
  std::string blocked_name;
  for (size_t c = 2; c < dataset.cases.size() && blocked_name.empty(); ++c) {
    const std::string& candidate = dataset.cases[c].edit.object;
    if (candidate != case0.edit.object && candidate != case1.edit.object &&
        candidate != case1.alternative_objects.front()) {
      blocked_name = candidate;
    }
  }
  if (blocked_name.empty()) blocked_name = "Villain McBad";
  (*system)->security().BlockEntity(blocked_name);
  std::cout << "[screening] \"" << blocked_name
            << "\" is on the administrator's blocklist.\n";
  std::cout << "  mallory: \"Change the governor of " << state << " to "
            << blocked_name << ".\"\n";
  const auto screened = (*system)->HandleUtterance(
      "Change the governor of " + state + " to " + blocked_name + ".",
      "mallory");
  if (screened.ok()) {
    std::cout << "  -> "
              << (screened->kind == EditResult::Kind::kRejected
                      ? "REJECTED: "
                      : "accepted?! ")
              << screened->message << "\n";
  }
  Ask(**system, state, "governor");

  // ---- Defense 2: after-the-fact rollback ----
  std::cout << "\n[rollback] mallory sneaks two edits past the blocklist:\n";
  for (const EditCase* edit_case : {&case0, &case1}) {
    const auto report = (*system)->EditTriple(edit_case->edit, "mallory");
    std::cout << "  mallory edits (" << edit_case->edit.subject << ", "
              << edit_case->edit.relation << ") -> "
              << edit_case->edit.object
              << (report.ok() && report->applied() ? "  [accepted]"
                                                   : "  [rejected]")
              << "\n";
  }
  std::cout << "  and honest alice contributes one:\n";
  const NamedTriple alice_edit{case1.edit.subject, case1.edit.relation,
                               case1.alternative_objects.front()};
  (void)(*system)->EditTriple(alice_edit, "alice");
  std::cout << "  alice edits (" << alice_edit.subject << ", "
            << alice_edit.relation << ") -> " << alice_edit.object << "\n";

  std::cout << "\n  poisoned state:\n";
  Ask(**system, case0.edit.subject, case0.edit.relation);
  Ask(**system, alice_edit.subject, alice_edit.relation);

  std::cout << "\n  admin: RollbackUserEdits(\"mallory\")\n";
  if (!(*system)->RollbackUserEdits("mallory").ok()) {
    std::cerr << "rollback failed\n";
    return 1;
  }

  std::cout << "\n  cleaned state (mallory reverted, alice intact):\n";
  Ask(**system, case0.edit.subject, case0.edit.relation);
  Ask(**system, alice_edit.subject, alice_edit.relation);

  std::cout << "\n  audit log after cleanup:\n";
  for (const AuditRecord& record : (*system)->audit_log()) {
    std::cout << "    " << record.user << ": (" << record.request.subject
              << ", " << record.request.relation << ") -> "
              << record.request.object << "\n";
  }
  return 0;
}
