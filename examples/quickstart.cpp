// Quickstart: stand up a OneEdit system over a tiny world, issue a natural
// language edit, and watch both the knowledge graph and the language model
// update together.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/oneedit.h"
#include "model/model_config.h"

using oneedit::Decode;
using oneedit::EditingMethodKind;
using oneedit::HornRule;
using oneedit::KnowledgeGraph;
using oneedit::LanguageModel;
using oneedit::ModelConfig;
using oneedit::NamedTriple;
using oneedit::OneEditConfig;
using oneedit::OneEditSystem;
using oneedit::RelationId;
using oneedit::Triple;
using oneedit::Vocab;

int main() {
  // 1) A small symbolic world: entities, relations (with inverses), rules.
  KnowledgeGraph kg;
  const RelationId president = kg.schema().Define("president");
  const RelationId presides = kg.schema().Define("presides_over");
  const RelationId wife = kg.schema().Define("wife");
  const RelationId husband = kg.schema().Define("husband");
  const RelationId first_lady = kg.schema().Define("first_lady");
  (void)kg.schema().SetInverse(president, presides);
  (void)kg.schema().SetInverse(wife, husband);
  kg.rules().AddRule(HornRule{"first-lady", president, wife, first_lady});

  const auto add = [&kg](const char* s, const char* r, const char* o) {
    (void)kg.Add(Triple{kg.InternEntity(s), *kg.schema().Lookup(r),
                        kg.InternEntity(o)});
  };
  add("the USA", "president", "Donald Trump");
  add("Donald Trump", "presides_over", "the USA");
  add("Donald Trump", "wife", "Melania Trump");
  add("Melania Trump", "husband", "Donald Trump");
  add("Joe Biden", "wife", "Jill Biden");
  add("Jill Biden", "husband", "Joe Biden");
  add("the USA", "first_lady", "Melania Trump");

  // 2) A simulated LLM pretrained on the same world.
  Vocab vocab;
  vocab.entities = {"the USA", "Donald Trump", "Joe Biden", "Melania Trump",
                    "Jill Biden"};
  vocab.relations = {{"president", "presides_over"},
                     {"wife", "husband"},
                     {"first_lady", ""}};
  ModelConfig model_config = oneedit::GptJSimConfig();
  model_config.junk_fraction = 0.2;
  LanguageModel model(model_config, vocab);
  model.Pretrain({{"the USA", "president", "Donald Trump"},
                  {"Donald Trump", "presides_over", "the USA"},
                  {"Donald Trump", "wife", "Melania Trump"},
                  {"Melania Trump", "husband", "Donald Trump"},
                  {"Joe Biden", "wife", "Jill Biden"},
                  {"Jill Biden", "husband", "Joe Biden"},
                  {"the USA", "first_lady", "Melania Trump"}});

  // 3) OneEdit wires Interpreter -> Controller -> Editor over both stores.
  OneEditConfig config;
  config.method = EditingMethodKind::kMemit;  // or kGrace, kRome, kFt
  auto system = OneEditSystem::Create(&kg, &model, config);
  if (!system.ok()) {
    std::cerr << "setup failed: " << system.status().ToString() << "\n";
    return 1;
  }

  const auto ask = [&](const char* subject, const char* relation) {
    const Decode decode = (*system)->Ask(subject, relation);
    std::cout << "  Q: " << relation << " of " << subject
              << "?  A: " << decode.entity << "\n";
  };

  std::cout << "Before the edit:\n";
  ask("the USA", "president");
  ask("the USA", "first_lady");
  ask("Joe Biden", "presides_over");

  std::cout << "\nUser says: \"Change the president of the USA to Joe "
               "Biden.\"\n";
  const auto response = (*system)->HandleUtterance(
      "Change the president of the USA to Joe Biden.", "demo-user");
  if (!response.ok()) {
    std::cerr << "edit failed: " << response.status().ToString() << "\n";
    return 1;
  }
  std::cout << "OneEdit: " << response->message << "\n";
  if (response->report.has_value()) {
    const auto& plan = response->report->plan;
    std::cout << "  (rolled back " << plan.rollbacks.size()
              << " conflicting triples, edited " << plan.edits.size()
              << ", augmented with " << plan.augmentations.size()
              << " generation triples)\n";
  }

  std::cout << "\nAfter the edit:\n";
  ask("the USA", "president");
  ask("the USA", "first_lady");     // updated via the first-lady rule
  ask("Joe Biden", "presides_over");  // updated via the inverse relation

  std::cout << "\nThe KG agrees:\n";
  const auto triple = kg.Resolve({"the USA", "president", "Joe Biden"});
  std::cout << "  KG contains (the USA, president, Joe Biden): "
            << (triple.ok() && kg.Contains(*triple) ? "yes" : "no") << "\n";
  return 0;
}
