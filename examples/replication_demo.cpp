// Replication chaos demo: durability through primary failover, runnable as
// a CI job (scripts/ci.sh's `replication` entry). One process per node:
//
//   --role=primary   stands up an EditService as the replication primary on
//                    an ephemeral loopback port (written to
//                    <dir>/replication.port), waits for its followers to
//                    connect, arms a hard crash (`_Exit(137)`, like kill -9)
//                    at the K-th durability file operation, and submits
//                    edits. Every acknowledged edit — which, with
//                    --ack-replicas=N, a quorum of followers has already
//                    journaled and applied — is appended fsynced to
//                    <dir>/acked.txt.
//
//   --role=follower  boots its own durability directory (usually empty: the
//                    snapshot-install path), tails the primary, and
//                    continuously publishes its applied sequence to
//                    <dir>/applied.seq. It then waits for the failover
//                    driver's verdict: <dir>/promote.flag promotes it to
//                    primary, after which it verifies every line of the dead
//                    primary's acked.txt via Ask (zero acknowledged-edit
//                    loss, answer equivalence) and accepts one new write;
//                    <dir>/stop.flag just shuts it down (the node that lost
//                    the election).
//
// The CI driver loops --crash-at over every failpoint, each round killing
// the primary mid-edit and promoting the most-caught-up follower. Exit
// codes: 0 success, 137 armed crash fired (primary), 1 property violated,
// 2 bad flags, 3 peer never showed up.

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "data/dataset.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "serving/edit_service.h"

using oneedit::BuildAmericanPoliticians;
using oneedit::Dataset;
using oneedit::DatasetOptions;
using oneedit::EditingMethodKind;
using oneedit::EditRequest;
using oneedit::EditResult;
using oneedit::LanguageModel;
using oneedit::OneEditConfig;
using oneedit::durability::DurabilityManager;
using oneedit::durability::DurabilityOptions;
using oneedit::durability::Env;
using oneedit::durability::FaultInjectingEnv;
using oneedit::serving::EditService;
using oneedit::serving::EditServiceOptions;
using oneedit::serving::ReplicationRole;

namespace {

struct Args {
  std::string role;
  std::string dir = "/tmp/oneedit_repl_node";
  /// Primary: where followers find replication.port (= its own dir).
  /// Follower: the primary's dir (port file + acked.txt live there).
  std::string primary_dir;
  size_t edits = 8;
  long crash_at = -1;
  size_t ack_replicas = 2;
  size_t wait_followers = 0;  // 0 = same as ack_replicas
  uint64_t checkpoint_interval = 3;
  size_t timeout_ms = 30000;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return std::strncmp(arg.c_str(), prefix, std::strlen(prefix)) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = value("--role=")) {
      args->role = v;
    } else if (const char* v = value("--dir=")) {
      args->dir = v;
    } else if (const char* v = value("--primary-dir=")) {
      args->primary_dir = v;
    } else if (const char* v = value("--edits=")) {
      args->edits = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--crash-at=")) {
      args->crash_at = std::stol(v);
    } else if (const char* v = value("--ack-replicas=")) {
      args->ack_replicas = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--wait-followers=")) {
      args->wait_followers = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--checkpoint-interval=")) {
      args->checkpoint_interval = std::stoull(v);
    } else if (const char* v = value("--timeout-ms=")) {
      args->timeout_ms = static_cast<size_t>(std::stoul(v));
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: replication_demo --role=primary|follower "
                   "[--dir=PATH] [--primary-dir=PATH] [--edits=N] "
                   "[--crash-at=K] [--ack-replicas=N] [--wait-followers=N] "
                   "[--checkpoint-interval=N] [--timeout-ms=N]\n";
      return false;
    }
  }
  if (args->role != "primary" && args->role != "follower") {
    std::cerr << "--role must be primary or follower\n";
    return false;
  }
  if (args->primary_dir.empty()) args->primary_dir = args->dir;
  if (args->wait_followers == 0) args->wait_followers = args->ack_replicas;
  return true;
}

struct World {
  Dataset dataset;
  std::unique_ptr<LanguageModel> model;

  World() : dataset(BuildAmericanPoliticians(DatasetOptions{})) {
    model = std::make_unique<LanguageModel>(oneedit::Gpt2XlSimConfig(),
                                            dataset.vocab);
    model->Pretrain(dataset.pretrain_facts);
  }

  OneEditConfig Config() const {
    OneEditConfig config;
    config.method = EditingMethodKind::kGrace;
    config.interpreter.extraction_error_rate = 0.0;
    return config;
  }
};

/// Durably appends one acknowledged edit to the ledger the failover driver
/// verifies against. Same contract as chaos_demo: an edit lands here only
/// AFTER the service acknowledged it, so anything in this file must survive
/// the primary's death.
void RecordAck(const std::string& dir, size_t index,
               const oneedit::NamedTriple& edit) {
  const std::string path = dir + "/acked.txt";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  std::ostringstream line;
  line << index << '\t' << edit.subject << '\t' << edit.relation << '\t'
       << edit.object << '\n';
  const std::string bytes = line.str();
  (void)!::write(fd, bytes.data(), bytes.size());
  (void)::fsync(fd);
  (void)::close(fd);
}

/// Publishes a small status file atomically (tmp + rename) so a concurrent
/// reader never sees a half-written value.
void PublishFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << content;
  }
  (void)std::rename(tmp.c_str(), path.c_str());
}

int RunPrimary(const Args& args) {
  World world;
  FaultInjectingEnv fault(Env::Default());
  if (args.crash_at >= 0) fault.set_exit_on_crash(true);

  DurabilityOptions durability_options;
  durability_options.dir = args.dir;
  durability_options.checkpoint_interval = args.checkpoint_interval;
  durability_options.env = &fault;
  auto manager = DurabilityManager::Open(durability_options);
  if (!manager.ok()) {
    std::cerr << "durability setup failed: " << manager.status().ToString()
              << "\n";
    return 1;
  }

  EditServiceOptions options;
  options.durability = manager->get();
  options.replication.role = ReplicationRole::kPrimary;
  options.replication.ack_replicas = args.ack_replicas;
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     world.Config(), options);
  if (!service.ok()) {
    std::cerr << "service setup failed: " << service.status().ToString()
              << "\n";
    return 1;
  }
  const auto* repl = (*service)->replication_server();
  if (repl == nullptr) {
    std::cerr << "REPLICATION FAILED: primary listener did not start\n";
    return 1;
  }
  PublishFile(args.dir + "/replication.port", std::to_string(repl->port()));
  std::cout << "primary up: port=" << repl->port()
            << " crash_at=" << args.crash_at << "\n";

  // Don't write until the quorum is attached: an ack-timeout acknowledgement
  // with nobody listening would put an edit in the ledger that no follower
  // ever saw — a harness artifact, not the durability property under test.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(args.timeout_ms);
  while ((*service)->followers_connected() < args.wait_followers) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::cerr << "REPLICATION FAILED: only "
                << (*service)->followers_connected() << " of "
                << args.wait_followers << " followers connected\n";
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  if (args.crash_at >= 0) fault.CrashAt(args.crash_at);
  for (size_t i = 0; i < args.edits && i < world.dataset.cases.size(); ++i) {
    const auto& edit = world.dataset.cases[i].edit;
    const auto result =
        (*service)->SubmitAndWait(EditRequest::Edit(edit, "primary"));
    if (result.ok() && result->applied()) {
      RecordAck(args.dir, i, edit);
    } else if (args.crash_at < 0) {
      std::cerr << "REPLICATION FAILED: edit " << i << " did not apply: "
                << (result.ok() ? result->message
                                : result.status().ToString())
                << "\n";
      return 1;
    }
  }
  std::cout << "primary done: ops_seen=" << fault.ops_seen()
            << " applied=" << (*service)->applied_sequence() << "\n";
  return 0;
}

int VerifyAfterPromote(const Args& args, World& world, EditService& service) {
  std::ifstream acked(args.primary_dir + "/acked.txt");
  std::string line;
  size_t promised = 0, lost = 0;
  while (std::getline(acked, line)) {
    std::istringstream fields(line);
    std::string index, subject, relation, object;
    if (!std::getline(fields, index, '\t') ||
        !std::getline(fields, subject, '\t') ||
        !std::getline(fields, relation, '\t') ||
        !std::getline(fields, object, '\t')) {
      continue;
    }
    ++promised;
    const std::string got =
        service.GetSnapshot()->Ask(subject, relation)->entity;
    if (got != object) {
      ++lost;
      std::cerr << "LOST acknowledged edit " << index << ": (" << subject
                << ", " << relation << ") is '" << got << "', promised '"
                << object << "'\n";
    }
  }
  std::cout << "verified " << promised << " acknowledged edits, " << lost
            << " lost\n";

  // The promoted node is the write authority now: it must accept and apply
  // a brand-new edit, durably, in its own right.
  const auto& fresh = world.dataset.cases.back().edit;
  const auto result =
      service.SubmitAndWait(EditRequest::Edit(fresh, "promoted"));
  if (!result.ok() || !result->applied()) {
    std::cerr << "REPLICATION FAILED: post-promotion edit did not apply: "
              << (result.ok() ? result->message : result.status().ToString())
              << "\n";
    return 1;
  }
  if (service.GetSnapshot()->Ask(fresh.subject, fresh.relation)->entity !=
      fresh.object) {
    std::cerr << "REPLICATION FAILED: post-promotion edit not readable\n";
    return 1;
  }
  return lost == 0 ? 0 : 1;
}

int RunFollower(const Args& args) {
  // Find the primary: poll its port file until it appears.
  const std::string port_path = args.primary_dir + "/replication.port";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(args.timeout_ms);
  uint16_t primary_port = 0;
  while (primary_port == 0) {
    std::ifstream in(port_path);
    int port = 0;
    if (in >> port && port > 0) {
      primary_port = static_cast<uint16_t>(port);
      break;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      std::cerr << "REPLICATION FAILED: no primary port at " << port_path
                << "\n";
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  World world;
  DurabilityOptions durability_options;
  durability_options.dir = args.dir;
  durability_options.checkpoint_interval = args.checkpoint_interval;
  auto manager = DurabilityManager::Open(durability_options);
  if (!manager.ok()) {
    std::cerr << "durability setup failed: " << manager.status().ToString()
              << "\n";
    return 1;
  }

  EditServiceOptions options;
  options.durability = manager->get();
  options.replication.role = ReplicationRole::kFollower;
  options.replication.primary_port = primary_port;
  options.replication.poll_interval = std::chrono::milliseconds(5);
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     world.Config(), options);
  if (!service.ok()) {
    std::cerr << "service setup failed: " << service.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "follower up: primary_port=" << primary_port << "\n";

  // Tail until the failover driver decides this node's fate. applied.seq is
  // the driver's election input: it promotes the most-caught-up follower.
  while (true) {
    PublishFile(args.dir + "/applied.seq",
                std::to_string((*service)->applied_sequence()));
    std::ifstream stop(args.dir + "/stop.flag");
    if (stop.good()) {
      std::cout << "follower stopping (lost election) at applied="
                << (*service)->applied_sequence() << "\n";
      return 0;
    }
    std::ifstream promote(args.dir + "/promote.flag");
    if (promote.good()) break;
    if (std::chrono::steady_clock::now() > deadline) {
      std::cerr << "REPLICATION FAILED: no promote/stop verdict arrived\n";
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const oneedit::Status promoted = (*service)->Promote();
  if (!promoted.ok()) {
    std::cerr << "REPLICATION FAILED: promotion: " << promoted.ToString()
              << "\n";
    return 1;
  }
  std::cout << "promoted at applied=" << (*service)->applied_sequence()
            << " snapshots_installed="
            << (*service)->statistics().Get(
                   oneedit::Ticker::kReplSnapshotsInstalled)
            << "\n";
  return VerifyAfterPromote(args, world, **service);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  return args.role == "primary" ? RunPrimary(args) : RunFollower(args);
}
