// Serving demo: stand up an EditService over the politicians world, run
// concurrent readers while a stream of edits is submitted, then inspect the
// serving statistics — queue depth, batch sizes, and per-request latency.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/serving_demo

#include <atomic>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serving/edit_service.h"

using oneedit::BuildAmericanPoliticians;
using oneedit::Dataset;
using oneedit::DatasetOptions;
using oneedit::EditingMethodKind;
using oneedit::EditRequest;
using oneedit::EditResult;
using oneedit::Gpt2XlSimConfig;
using oneedit::LanguageModel;
using oneedit::OneEditConfig;
using oneedit::StatusOr;
using oneedit::serving::EditService;
using oneedit::serving::EditServiceOptions;

int main() {
  Dataset dataset = BuildAmericanPoliticians(DatasetOptions{});
  LanguageModel model(Gpt2XlSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  EditServiceOptions options;
  options.max_batch_size = 16;
  auto service = EditService::Create(&dataset.kg, &model, config, options);
  if (!service.ok()) {
    std::cerr << "setup failed: " << service.status().ToString() << "\n";
    return 1;
  }

  std::cout << "EditService up: queue capacity "
            << (*service)->options().queue_capacity << ", max batch "
            << (*service)->options().max_batch_size << "\n\n";

  // Readers query continuously; they only block while the writer applies a
  // coalesced batch of weights.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& edit_case = dataset.cases[i++ % dataset.cases.size()];
        (void)(*service)->GetSnapshot()->Ask(edit_case.edit.subject,
                              edit_case.edit.relation);
      }
    });
  }

  // Meanwhile, a burst of editors submits one edit per case.
  std::vector<std::future<StatusOr<EditResult>>> futures;
  for (const auto& edit_case : dataset.cases) {
    futures.push_back((*service)->Submit(
        EditRequest::Edit(edit_case.edit, "crowd")));
  }
  size_t applied = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (result.ok() && result->applied()) ++applied;
  }
  (*service)->Drain();
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  std::cout << applied << "/" << dataset.cases.size()
            << " edits applied while readers kept querying.\n";
  const auto& edit = dataset.cases.front().edit;
  std::cout << "Spot check: " << edit.relation << "(" << edit.subject
            << ") = "
            << (*service)->GetSnapshot()->Ask(edit.subject,
                                              edit.relation)->entity
            << " (expected " << edit.object << ")\n\n";

  std::cout << "Serving statistics:\n  "
            << (*service)->statistics().ToString() << "\n";
  return 0;
}
