// Interactive OneEdit shell over the American-politicians world: type edits
// and questions in natural language, inspect the KG with pattern queries,
// and watch the Controller's plans. Reads stdin, so it can also be scripted:
//
//   printf 'ask Ashfield governor\nChange the governor of Ashfield to Hugo
//   Castillo.\nask Ashfield governor\nquit\n' | ./build/examples/interactive_repl
//
// Commands:
//   ask <subject> <relation>       direct model query
//   kg <subject> <relation>        KG lookup
//   query ?v <relation> <object>   pattern query (one pattern)
//   audit                          show the audit log
//   help / quit
// Anything else is treated as a natural-language utterance.

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/config_io.h"
#include "core/oneedit.h"
#include "data/dataset.h"
#include "kg/pattern_query.h"
#include "model/model_config.h"
#include "util/string_util.h"

using namespace oneedit;

namespace {

/// Reads whitespace-separated fields where multi-word names are quoted is
/// overkill here: entity names contain spaces, so `ask`/`kg` take the
/// subject up to the last token (the relation).
bool SplitSubjectRelation(const std::string& rest, std::string* subject,
                          std::string* relation) {
  const size_t last_space = rest.find_last_of(' ');
  if (last_space == std::string::npos) return false;
  *subject = rest.substr(0, last_space);
  *relation = rest.substr(last_space + 1);
  return !subject->empty() && !relation->empty();
}

}  // namespace

int main(int argc, char** argv) {
  // Optional deployment config: interactive_repl --config oneedit.conf
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      auto loaded = LoadOneEditConfig(argv[++i]);
      if (!loaded.ok()) {
        std::cerr << loaded.status().ToString() << "\n";
        return 1;
      }
      config = *loaded;
      std::cerr << "(loaded config)\n" << OneEditConfigToString(config);
    }
  }

  DatasetOptions options;
  options.num_cases = 10;
  Dataset dataset = BuildAmericanPoliticians(options);
  LanguageModel model(GptJSimConfig(), dataset.vocab);
  std::cerr << "(pretraining the simulated model...)\n";
  model.Pretrain(dataset.pretrain_facts);

  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  if (!system.ok()) {
    std::cerr << system.status().ToString() << "\n";
    return 1;
  }

  std::cout << "OneEdit interactive shell — world: American politicians ("
            << dataset.kg.size() << " triples, " << dataset.kg.num_entities()
            << " entities). Type 'help' for commands.\n";
  std::cout << "Try:  Change the governor of " << dataset.cases[0].edit.subject
            << " to " << dataset.cases[0].edit.object << ".\n";

  std::string line;
  while (std::cout << "oneedit> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      std::cout << "  ask <subject> <relation>   model query\n"
                   "  kg <subject> <relation>    symbolic lookup\n"
                   "  query <relation> <object>  who has <relation> = object?\n"
                   "  audit                      show accepted edits\n"
                   "  quit                       leave\n"
                   "  ...anything else is sent to the Interpreter\n"
                   "     (edits: 'Change the governor of X to Y.';\n"
                   "      erasures: 'Forget that the governor of X is Y.')\n";
      continue;
    }
    if (line == "audit") {
      for (const AuditRecord& record : (*system)->audit_log()) {
        std::cout << "  " << record.user << ": (" << record.request.subject
                  << ", " << record.request.relation << ") -> "
                  << record.request.object << "\n";
      }
      continue;
    }
    if (line.rfind("ask ", 0) == 0) {
      std::string subject, relation;
      if (!SplitSubjectRelation(line.substr(4), &subject, &relation)) {
        std::cout << "  usage: ask <subject> <relation>\n";
        continue;
      }
      const Decode decode = (*system)->Ask(subject, relation);
      std::cout << "  model: " << decode.entity
                << (decode.intercepted ? "  (from adaptor memory)" : "")
                << "\n";
      if (!decode.intercepted) {
        std::cout << "  top-3:";
        for (const Decode& alt : model.QueryTopK(subject, relation, 3)) {
          std::cout << "  " << alt.entity << " ("
                    << FormatDouble(alt.score, 2) << ")";
        }
        std::cout << "\n";
      }
      continue;
    }
    if (line.rfind("kg ", 0) == 0) {
      std::string subject, relation;
      if (!SplitSubjectRelation(line.substr(3), &subject, &relation)) {
        std::cout << "  usage: kg <subject> <relation>\n";
        continue;
      }
      const auto subject_id = dataset.kg.LookupEntity(subject);
      const auto relation_id = dataset.kg.schema().Lookup(relation);
      if (!subject_id.ok() || !relation_id.ok()) {
        std::cout << "  unknown subject or relation\n";
        continue;
      }
      const auto object = dataset.kg.ObjectOf(*subject_id, *relation_id);
      std::cout << "  kg: "
                << (object.has_value() ? dataset.kg.EntityName(*object)
                                       : std::string("<no fact>"))
                << "\n";
      continue;
    }
    if (line.rfind("query ", 0) == 0) {
      std::string relation, object;
      if (!SplitSubjectRelation(line.substr(6), &relation, &object)) {
        // relation first, object last — reuse the splitter in reverse.
        std::cout << "  usage: query <relation> <object>\n";
        continue;
      }
      // `relation` currently holds everything but the last token; swap so a
      // single-token relation plus multi-word object works.
      const size_t first_space = line.substr(6).find(' ');
      relation = line.substr(6, first_space);
      object = line.substr(6 + first_space + 1);
      const auto results =
          Query(dataset.kg, {{"?who", relation, object}});
      if (!results.ok()) {
        std::cout << "  " << results.status().ToString() << "\n";
        continue;
      }
      for (const Binding& binding : *results) {
        std::cout << "  ?who = " << binding.at("?who") << "\n";
      }
      if (results->empty()) std::cout << "  (no matches)\n";
      continue;
    }

    // Natural language path.
    const auto response = (*system)->HandleUtterance(line, "repl-user");
    if (!response.ok()) {
      std::cout << "  error: " << response.status().ToString() << "\n";
      continue;
    }
    std::cout << "  " << response->message << "\n";
    if (response->report.has_value() && !response->plan().no_op) {
      const EditPlan& plan = response->report->plan;
      std::cout << "  [plan: " << plan.rollbacks.size() << " rollbacks, "
                << plan.edits.size() << " edits, "
                << plan.augmentations.size() << " generation triples]\n";
    }
  }
  std::cout << "bye\n";
  return 0;
}
