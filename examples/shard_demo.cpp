// Shard-fleet demo: stands up a ShardRouter over N durable EditService
// shards (each with its own WAL under <dir>/shard-i), drives a mixed
// workload through the router — single-shard edits, cross-shard 2PC edits
// on reversible relations, tenant-scoped traffic that trips a token-bucket
// quota — and exposes the router's aggregate observability surface
// (/metrics, /metrics.json, /health, /placement) on one listener.
//
// scripts/ci.sh's `metrics` job scrapes the fleet during the --hold-ms
// window and asserts the per-shard and per-tenant families are present and
// consistent with the workload that just ran.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/shard_demo --dir=/tmp/oneedit_shards --shards=3 \
//       --metrics-port=0 --hold-ms=8000

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "durability/env.h"
#include "durability/manager.h"
#include "serving/edit_service.h"
#include "shard/shard_router.h"

using oneedit::BuildAmericanPoliticians;
using oneedit::Dataset;
using oneedit::DatasetOptions;
using oneedit::EditCase;
using oneedit::EditingMethodKind;
using oneedit::EditRequest;
using oneedit::EditResult;
using oneedit::LanguageModel;
using oneedit::NamedTriple;
using oneedit::OneEditConfig;
using oneedit::durability::DurabilityManager;
using oneedit::durability::DurabilityOptions;
using oneedit::durability::Env;
using oneedit::serving::EditService;
using oneedit::serving::EditServiceOptions;
using oneedit::shard::ShardRouter;
using oneedit::shard::ShardRouterOptions;
using oneedit::shard::ShardSpec;
using oneedit::shard::TenantQuota;

namespace {

struct Args {
  std::string dir = "/tmp/oneedit_shards";
  size_t shards = 3;
  /// >= 0 starts the router's metrics listener on this port (0 =
  /// ephemeral); the bound port is written to <dir>/metrics.port so a
  /// scraper can find it. -1 (default) leaves the listener off.
  int metrics_port = -1;
  /// Keep the fleet (and its listener) alive this long after the workload
  /// settles — the scrape window for ci.sh's metrics job.
  size_t hold_ms = 0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return std::strncmp(arg.c_str(), prefix, std::strlen(prefix)) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = value("--dir=")) {
      args->dir = v;
    } else if (const char* v = value("--shards=")) {
      args->shards = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--metrics-port=")) {
      args->metrics_port = std::stoi(v);
    } else if (const char* v = value("--hold-ms=")) {
      args->hold_ms = static_cast<size_t>(std::stoul(v));
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: shard_demo [--dir=PATH] [--shards=N] "
                   "[--metrics-port=N] [--hold-ms=N]\n";
      return false;
    }
  }
  return args->shards > 0;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

struct ShardWorld {
  explicit ShardWorld(DurabilityManager* durability)
      : dataset(BuildAmericanPoliticians(DatasetOptions{})),
        model(std::make_unique<LanguageModel>(oneedit::Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    EditServiceOptions options;
    options.durability = durability;
    auto created = EditService::Create(&dataset.kg, model.get(),
                                       GraceConfig(), options);
    if (!created.ok()) {
      std::cerr << "shard create failed: " << created.status().ToString()
                << "\n";
      std::abort();
    }
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  (void)Env::Default()->CreateDir(args.dir);
  std::vector<std::unique_ptr<DurabilityManager>> managers;
  std::vector<std::unique_ptr<ShardWorld>> shards;
  for (size_t i = 0; i < args.shards; ++i) {
    DurabilityOptions opts;
    opts.dir = args.dir + "/shard-" + std::to_string(i);
    auto manager = DurabilityManager::Open(opts);
    if (!manager.ok()) {
      std::cerr << "durability setup failed: "
                << manager.status().ToString() << "\n";
      return 1;
    }
    managers.push_back(std::move(*manager));
    shards.push_back(std::make_unique<ShardWorld>(managers.back().get()));
  }

  ShardRouterOptions options;
  options.vocab = &shards[0]->dataset.vocab;
  if (args.metrics_port >= 0) {
    options.expose_metrics = true;
    options.metrics_port = static_cast<uint16_t>(args.metrics_port);
  }
  std::vector<ShardSpec> specs;
  for (size_t i = 0; i < args.shards; ++i) {
    specs.push_back(ShardSpec{"shard-" + std::to_string(i),
                              shards[i]->service.get(), managers[i].get(),
                              1.0});
  }
  ShardRouter router(std::move(specs), options);

  if (args.metrics_port >= 0) {
    const auto* listener = router.metrics_server();
    if (listener == nullptr) {
      std::cerr << "SHARD DEMO FAILED: metrics listener did not start\n";
      return 1;
    }
    std::ofstream port_file(args.dir + "/metrics.port");
    port_file << listener->port() << "\n";
    port_file.close();
    std::cout << "metrics: http://" << listener->address() << "/metrics\n";
  }

  // Resolve anything a previous run left in doubt before taking traffic.
  const auto resolved = router.RecoverInDoubt();
  if (resolved.ok() &&
      (resolved->committed_applied > 0 || resolved->presumed_aborts > 0)) {
    std::cout << "recovered in-doubt txns: " << resolved->committed_applied
              << " committed, " << resolved->presumed_aborts
              << " presumed aborts\n";
  }

  // A strict quota for one tenant: the flood below overruns the bucket and
  // populates the per-tenant reject family.
  router.SetTenantQuota("acme", TenantQuota{1.0, 2.0});

  // Workload: every counterfactual edit routed by subject; reversible
  // relations whose object lives on another shard go through 2PC.
  const Dataset& dataset = shards[0]->dataset;
  size_t applied = 0, rejected = 0;
  for (const EditCase& edit_case : dataset.cases) {
    const auto result =
        router.SubmitAndWait(EditRequest::Edit(edit_case.edit, "newsroom"));
    if (result.ok() && result->applied()) {
      ++applied;
    } else {
      ++rejected;
    }
  }
  // Tenant flood: same facts under the quota-limited tenant namespace.
  size_t shed = 0;
  for (const EditCase& edit_case : dataset.cases) {
    const auto result = router.SubmitAndWait(
        EditRequest::Edit(edit_case.edit, "analyst"), "acme");
    if (result.ok() && result->kind == EditResult::Kind::kRejected) ++shed;
  }
  // Reads fan out per subject; a scatter-ask pins one snapshot per shard.
  size_t answered = 0;
  std::vector<std::pair<std::string, std::string>> queries;
  for (const EditCase& edit_case : dataset.cases) {
    queries.emplace_back(edit_case.edit.subject, edit_case.edit.relation);
  }
  for (const auto& answer : router.ScatterAsk(queries)) {
    if (answer.decode.ok()) ++answered;
  }

  std::cout << "fleet: " << args.shards << " shards; applied " << applied
            << ", rejected " << rejected << ", quota-shed " << shed
            << ", answered " << answered << "\n";
  std::cout << "cross-shard txns: " << router.cross_shard_txns()
            << " (aborts " << router.cross_shard_aborts() << ")\n";
  for (size_t i = 0; i < args.shards; ++i) {
    std::cout << "  shard-" << i << ": requests " << router.shard_requests(i)
              << ", edits " << router.shard_edits(i) << "\n";
  }
  std::cout << "health: " << router.HealthJson() << "\n";

  if (args.hold_ms > 0) {
    std::cout << "holding for " << args.hold_ms << " ms\n" << std::flush;
    std::this_thread::sleep_for(std::chrono::milliseconds(args.hold_ms));
  }
  return 0;
}
