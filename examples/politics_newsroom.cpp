// Newsroom scenario: several editors keep a political knowledge base in sync
// with election results, entirely through natural language. Demonstrates the
// paper's multi-user collaborative editing: coverage conflicts when two
// editors disagree, reverse-relation maintenance, rule-driven updates
// (first lady / residence), and the audit log.
//
//   ./build/examples/politics_newsroom

#include <iostream>

#include "core/oneedit.h"
#include "data/dataset.h"
#include "model/model_config.h"
#include "nlp/utterance_generator.h"

using namespace oneedit;

namespace {

void Ask(OneEditSystem& system, const std::string& subject,
         const std::string& relation) {
  const Decode decode = system.Ask(subject, relation);
  std::cout << "    " << relation << "(" << subject << ") = " << decode.entity
            << "\n";
}

void Say(OneEditSystem& system, const std::string& user,
         const std::string& utterance) {
  std::cout << "  [" << user << "] \"" << utterance << "\"\n";
  const auto response = system.HandleUtterance(utterance, user);
  if (!response.ok()) {
    std::cout << "    !! " << response.status().ToString() << "\n";
    return;
  }
  std::cout << "    -> " << response->message << "\n";
}

}  // namespace

int main() {
  // The American-politicians world from the paper's experiments.
  DatasetOptions options;
  options.num_cases = 10;
  Dataset dataset = BuildAmericanPoliticians(options);

  LanguageModel model(GptJSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  if (!system.ok()) {
    std::cerr << system.status().ToString() << "\n";
    return 1;
  }

  // Pick a state and two rival candidates from the generated world.
  const EditCase& race = dataset.cases.front();
  const std::string& state = race.edit.subject;          // e.g. "Ashfield"
  const std::string& incumbent = race.old_object;        // current governor
  const std::string& challenger = race.edit.object;      // counterfactual
  const std::string& third_party = race.alternative_objects.front();

  std::cout << "=== Election night in " << state << " ===\n\n";
  std::cout << "  Incumbent: " << incumbent << "; challenger: " << challenger
            << "; late entrant: " << third_party << "\n\n";

  std::cout << "Before the polls close:\n";
  Ask(**system, state, "governor");
  Ask(**system, state, "first_lady");

  std::cout << "\n-- 9pm: early call --\n";
  Say(**system, "desk-1",
      "Change the governor of " + state + " to " + challenger + ".");
  std::cout << "  Newsroom state:\n";
  Ask(**system, state, "governor");
  Ask(**system, state, "first_lady");  // follows via the first-lady rule
  Ask(**system, challenger, "governs");  // inverse relation maintained

  std::cout << "\n-- 11pm: recount flips the race --\n";
  Say(**system, "desk-2",
      "Correct the record: " + state + "'s governor should be " + third_party +
          ".");
  std::cout << "  Newsroom state:\n";
  Ask(**system, state, "governor");
  Ask(**system, state, "first_lady");

  std::cout << "\n-- midnight: final certification restores the 9pm call --\n";
  Say(**system, "desk-1",
      "Set the governor of " + state + " to " + challenger + ".");
  std::cout << "  Newsroom state (served from the edit cache):\n";
  Ask(**system, state, "governor");
  Ask(**system, state, "first_lady");

  std::cout << "\n-- a reader asks a question --\n";
  Say(**system, "reader", "Who is the governor of " + state + "?");
  Say(**system, "reader",
      "What is the first lady of " + state + "?");

  std::cout << "\n=== Audit log ===\n";
  for (const AuditRecord& record : (*system)->audit_log()) {
    std::cout << "  " << record.user << ": (" << record.request.subject
              << ", " << record.request.relation << ") -> "
              << record.request.object << "  [was: "
              << (record.previous_object.empty() ? "<new>"
                                                 : record.previous_object)
              << "]\n";
  }
  std::cout << "\nEdit cache: " << (*system)->editor().cache().size()
            << " stored deltas ("
            << (*system)->editor().cache().ApproxBytes() / 1024 << " KiB) — "
            << "the space-for-time ledger that made the midnight flip "
               "instant.\n";
  return 0;
}
