# Empty dependencies file for micro_nlp.
# This may be replaced when dependencies are built.
