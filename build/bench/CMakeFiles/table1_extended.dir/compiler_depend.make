# Empty compiler generated dependencies file for table1_extended.
# This may be replaced when dependencies are built.
