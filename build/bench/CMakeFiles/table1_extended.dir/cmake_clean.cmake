file(REMOVE_RECURSE
  "CMakeFiles/table1_extended.dir/table1_extended.cc.o"
  "CMakeFiles/table1_extended.dir/table1_extended.cc.o.d"
  "table1_extended"
  "table1_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
