file(REMOVE_RECURSE
  "CMakeFiles/table2_multi_user.dir/table2_multi_user.cc.o"
  "CMakeFiles/table2_multi_user.dir/table2_multi_user.cc.o.d"
  "table2_multi_user"
  "table2_multi_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_multi_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
