# Empty compiler generated dependencies file for table2_multi_user.
# This may be replaced when dependencies are built.
