# Empty compiler generated dependencies file for micro_kg.
# This may be replaced when dependencies are built.
