file(REMOVE_RECURSE
  "CMakeFiles/micro_kg.dir/micro_kg.cc.o"
  "CMakeFiles/micro_kg.dir/micro_kg.cc.o.d"
  "micro_kg"
  "micro_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
