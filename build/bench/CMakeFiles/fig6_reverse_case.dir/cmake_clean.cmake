file(REMOVE_RECURSE
  "CMakeFiles/fig6_reverse_case.dir/fig6_reverse_case.cc.o"
  "CMakeFiles/fig6_reverse_case.dir/fig6_reverse_case.cc.o.d"
  "fig6_reverse_case"
  "fig6_reverse_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reverse_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
