# Empty compiler generated dependencies file for fig6_reverse_case.
# This may be replaced when dependencies are built.
