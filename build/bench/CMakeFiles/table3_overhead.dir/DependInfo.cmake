
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_overhead.cc" "bench/CMakeFiles/table3_overhead.dir/table3_overhead.cc.o" "gcc" "bench/CMakeFiles/table3_overhead.dir/table3_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oneedit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/oneedit_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/oneedit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/editing/CMakeFiles/oneedit_editing.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/oneedit_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/oneedit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oneedit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/oneedit_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
