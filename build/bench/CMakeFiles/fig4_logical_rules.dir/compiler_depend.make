# Empty compiler generated dependencies file for fig4_logical_rules.
# This may be replaced when dependencies are built.
