file(REMOVE_RECURSE
  "CMakeFiles/fig4_logical_rules.dir/fig4_logical_rules.cc.o"
  "CMakeFiles/fig4_logical_rules.dir/fig4_logical_rules.cc.o.d"
  "fig4_logical_rules"
  "fig4_logical_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_logical_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
