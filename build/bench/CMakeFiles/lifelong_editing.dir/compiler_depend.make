# Empty compiler generated dependencies file for lifelong_editing.
# This may be replaced when dependencies are built.
