file(REMOVE_RECURSE
  "CMakeFiles/lifelong_editing.dir/lifelong_editing.cc.o"
  "CMakeFiles/lifelong_editing.dir/lifelong_editing.cc.o.d"
  "lifelong_editing"
  "lifelong_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifelong_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
