file(REMOVE_RECURSE
  "CMakeFiles/micro_editing.dir/micro_editing.cc.o"
  "CMakeFiles/micro_editing.dir/micro_editing.cc.o.d"
  "micro_editing"
  "micro_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
