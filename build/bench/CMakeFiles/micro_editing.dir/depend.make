# Empty dependencies file for micro_editing.
# This may be replaced when dependencies are built.
