# Empty compiler generated dependencies file for table1_single_user.
# This may be replaced when dependencies are built.
