file(REMOVE_RECURSE
  "CMakeFiles/table1_single_user.dir/table1_single_user.cc.o"
  "CMakeFiles/table1_single_user.dir/table1_single_user.cc.o.d"
  "table1_single_user"
  "table1_single_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_single_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
