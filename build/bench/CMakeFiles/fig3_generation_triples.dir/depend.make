# Empty dependencies file for fig3_generation_triples.
# This may be replaced when dependencies are built.
