file(REMOVE_RECURSE
  "CMakeFiles/fig3_generation_triples.dir/fig3_generation_triples.cc.o"
  "CMakeFiles/fig3_generation_triples.dir/fig3_generation_triples.cc.o.d"
  "fig3_generation_triples"
  "fig3_generation_triples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_generation_triples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
