file(REMOVE_RECURSE
  "CMakeFiles/eval_cli.dir/eval_cli.cc.o"
  "CMakeFiles/eval_cli.dir/eval_cli.cc.o.d"
  "eval_cli"
  "eval_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
