file(REMOVE_RECURSE
  "CMakeFiles/fig5_coverage_case.dir/fig5_coverage_case.cc.o"
  "CMakeFiles/fig5_coverage_case.dir/fig5_coverage_case.cc.o.d"
  "fig5_coverage_case"
  "fig5_coverage_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_coverage_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
