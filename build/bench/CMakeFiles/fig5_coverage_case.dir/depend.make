# Empty dependencies file for fig5_coverage_case.
# This may be replaced when dependencies are built.
