# Empty dependencies file for academic_registry.
# This may be replaced when dependencies are built.
