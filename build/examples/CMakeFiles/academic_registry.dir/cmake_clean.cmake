file(REMOVE_RECURSE
  "CMakeFiles/academic_registry.dir/academic_registry.cpp.o"
  "CMakeFiles/academic_registry.dir/academic_registry.cpp.o.d"
  "academic_registry"
  "academic_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/academic_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
