# Empty compiler generated dependencies file for politics_newsroom.
# This may be replaced when dependencies are built.
