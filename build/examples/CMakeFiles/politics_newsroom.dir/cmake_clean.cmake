file(REMOVE_RECURSE
  "CMakeFiles/politics_newsroom.dir/politics_newsroom.cpp.o"
  "CMakeFiles/politics_newsroom.dir/politics_newsroom.cpp.o.d"
  "politics_newsroom"
  "politics_newsroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/politics_newsroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
