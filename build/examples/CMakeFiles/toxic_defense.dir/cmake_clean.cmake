file(REMOVE_RECURSE
  "CMakeFiles/toxic_defense.dir/toxic_defense.cpp.o"
  "CMakeFiles/toxic_defense.dir/toxic_defense.cpp.o.d"
  "toxic_defense"
  "toxic_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toxic_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
