# Empty dependencies file for toxic_defense.
# This may be replaced when dependencies are built.
