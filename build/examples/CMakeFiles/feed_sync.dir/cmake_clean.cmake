file(REMOVE_RECURSE
  "CMakeFiles/feed_sync.dir/feed_sync.cpp.o"
  "CMakeFiles/feed_sync.dir/feed_sync.cpp.o.d"
  "feed_sync"
  "feed_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
