# Empty dependencies file for feed_sync.
# This may be replaced when dependencies are built.
