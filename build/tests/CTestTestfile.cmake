# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/kg_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/editing_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/oneedit_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/editor_exec_test[1]_include.cmake")
include("/root/repo/build/tests/model_pathways_test[1]_include.cmake")
include("/root/repo/build/tests/controller_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/system_ops_test[1]_include.cmake")
include("/root/repo/build/tests/erase_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
