file(REMOVE_RECURSE
  "CMakeFiles/model_pathways_test.dir/model_pathways_test.cc.o"
  "CMakeFiles/model_pathways_test.dir/model_pathways_test.cc.o.d"
  "model_pathways_test"
  "model_pathways_test.pdb"
  "model_pathways_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_pathways_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
