# Empty compiler generated dependencies file for model_pathways_test.
# This may be replaced when dependencies are built.
