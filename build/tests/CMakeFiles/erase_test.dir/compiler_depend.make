# Empty compiler generated dependencies file for erase_test.
# This may be replaced when dependencies are built.
