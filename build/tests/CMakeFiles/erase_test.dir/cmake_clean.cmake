file(REMOVE_RECURSE
  "CMakeFiles/erase_test.dir/erase_test.cc.o"
  "CMakeFiles/erase_test.dir/erase_test.cc.o.d"
  "erase_test"
  "erase_test.pdb"
  "erase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
