# Empty dependencies file for controller_semantics_test.
# This may be replaced when dependencies are built.
