file(REMOVE_RECURSE
  "CMakeFiles/controller_semantics_test.dir/controller_semantics_test.cc.o"
  "CMakeFiles/controller_semantics_test.dir/controller_semantics_test.cc.o.d"
  "controller_semantics_test"
  "controller_semantics_test.pdb"
  "controller_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
