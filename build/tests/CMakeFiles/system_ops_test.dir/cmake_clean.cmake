file(REMOVE_RECURSE
  "CMakeFiles/system_ops_test.dir/system_ops_test.cc.o"
  "CMakeFiles/system_ops_test.dir/system_ops_test.cc.o.d"
  "system_ops_test"
  "system_ops_test.pdb"
  "system_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
