# Empty dependencies file for system_ops_test.
# This may be replaced when dependencies are built.
