# Empty compiler generated dependencies file for editor_exec_test.
# This may be replaced when dependencies are built.
