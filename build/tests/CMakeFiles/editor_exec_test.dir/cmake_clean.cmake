file(REMOVE_RECURSE
  "CMakeFiles/editor_exec_test.dir/editor_exec_test.cc.o"
  "CMakeFiles/editor_exec_test.dir/editor_exec_test.cc.o.d"
  "editor_exec_test"
  "editor_exec_test.pdb"
  "editor_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/editor_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
