# Empty dependencies file for oneedit_test.
# This may be replaced when dependencies are built.
