file(REMOVE_RECURSE
  "CMakeFiles/oneedit_test.dir/oneedit_test.cc.o"
  "CMakeFiles/oneedit_test.dir/oneedit_test.cc.o.d"
  "oneedit_test"
  "oneedit_test.pdb"
  "oneedit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
