file(REMOVE_RECURSE
  "CMakeFiles/editing_test.dir/editing_test.cc.o"
  "CMakeFiles/editing_test.dir/editing_test.cc.o.d"
  "editing_test"
  "editing_test.pdb"
  "editing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/editing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
