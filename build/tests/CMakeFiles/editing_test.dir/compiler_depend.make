# Empty compiler generated dependencies file for editing_test.
# This may be replaced when dependencies are built.
