file(REMOVE_RECURSE
  "CMakeFiles/oneedit_model.dir/assoc_memory.cc.o"
  "CMakeFiles/oneedit_model.dir/assoc_memory.cc.o.d"
  "CMakeFiles/oneedit_model.dir/checkpoint.cc.o"
  "CMakeFiles/oneedit_model.dir/checkpoint.cc.o.d"
  "CMakeFiles/oneedit_model.dir/embedding.cc.o"
  "CMakeFiles/oneedit_model.dir/embedding.cc.o.d"
  "CMakeFiles/oneedit_model.dir/language_model.cc.o"
  "CMakeFiles/oneedit_model.dir/language_model.cc.o.d"
  "CMakeFiles/oneedit_model.dir/model_config.cc.o"
  "CMakeFiles/oneedit_model.dir/model_config.cc.o.d"
  "liboneedit_model.a"
  "liboneedit_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
