# Empty compiler generated dependencies file for oneedit_model.
# This may be replaced when dependencies are built.
