
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/assoc_memory.cc" "src/model/CMakeFiles/oneedit_model.dir/assoc_memory.cc.o" "gcc" "src/model/CMakeFiles/oneedit_model.dir/assoc_memory.cc.o.d"
  "/root/repo/src/model/checkpoint.cc" "src/model/CMakeFiles/oneedit_model.dir/checkpoint.cc.o" "gcc" "src/model/CMakeFiles/oneedit_model.dir/checkpoint.cc.o.d"
  "/root/repo/src/model/embedding.cc" "src/model/CMakeFiles/oneedit_model.dir/embedding.cc.o" "gcc" "src/model/CMakeFiles/oneedit_model.dir/embedding.cc.o.d"
  "/root/repo/src/model/language_model.cc" "src/model/CMakeFiles/oneedit_model.dir/language_model.cc.o" "gcc" "src/model/CMakeFiles/oneedit_model.dir/language_model.cc.o.d"
  "/root/repo/src/model/model_config.cc" "src/model/CMakeFiles/oneedit_model.dir/model_config.cc.o" "gcc" "src/model/CMakeFiles/oneedit_model.dir/model_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oneedit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/oneedit_kg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
