file(REMOVE_RECURSE
  "liboneedit_model.a"
)
