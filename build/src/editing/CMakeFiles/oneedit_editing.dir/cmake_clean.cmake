file(REMOVE_RECURSE
  "CMakeFiles/oneedit_editing.dir/cache_io.cc.o"
  "CMakeFiles/oneedit_editing.dir/cache_io.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/edit_cache.cc.o"
  "CMakeFiles/oneedit_editing.dir/edit_cache.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/edit_delta.cc.o"
  "CMakeFiles/oneedit_editing.dir/edit_delta.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/editor.cc.o"
  "CMakeFiles/oneedit_editing.dir/editor.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/ft.cc.o"
  "CMakeFiles/oneedit_editing.dir/ft.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/grace.cc.o"
  "CMakeFiles/oneedit_editing.dir/grace.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/memit.cc.o"
  "CMakeFiles/oneedit_editing.dir/memit.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/mend.cc.o"
  "CMakeFiles/oneedit_editing.dir/mend.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/rome.cc.o"
  "CMakeFiles/oneedit_editing.dir/rome.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/serac.cc.o"
  "CMakeFiles/oneedit_editing.dir/serac.cc.o.d"
  "CMakeFiles/oneedit_editing.dir/write_utils.cc.o"
  "CMakeFiles/oneedit_editing.dir/write_utils.cc.o.d"
  "liboneedit_editing.a"
  "liboneedit_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
