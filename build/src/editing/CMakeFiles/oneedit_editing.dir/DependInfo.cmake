
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/editing/cache_io.cc" "src/editing/CMakeFiles/oneedit_editing.dir/cache_io.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/cache_io.cc.o.d"
  "/root/repo/src/editing/edit_cache.cc" "src/editing/CMakeFiles/oneedit_editing.dir/edit_cache.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/edit_cache.cc.o.d"
  "/root/repo/src/editing/edit_delta.cc" "src/editing/CMakeFiles/oneedit_editing.dir/edit_delta.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/edit_delta.cc.o.d"
  "/root/repo/src/editing/editor.cc" "src/editing/CMakeFiles/oneedit_editing.dir/editor.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/editor.cc.o.d"
  "/root/repo/src/editing/ft.cc" "src/editing/CMakeFiles/oneedit_editing.dir/ft.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/ft.cc.o.d"
  "/root/repo/src/editing/grace.cc" "src/editing/CMakeFiles/oneedit_editing.dir/grace.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/grace.cc.o.d"
  "/root/repo/src/editing/memit.cc" "src/editing/CMakeFiles/oneedit_editing.dir/memit.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/memit.cc.o.d"
  "/root/repo/src/editing/mend.cc" "src/editing/CMakeFiles/oneedit_editing.dir/mend.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/mend.cc.o.d"
  "/root/repo/src/editing/rome.cc" "src/editing/CMakeFiles/oneedit_editing.dir/rome.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/rome.cc.o.d"
  "/root/repo/src/editing/serac.cc" "src/editing/CMakeFiles/oneedit_editing.dir/serac.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/serac.cc.o.d"
  "/root/repo/src/editing/write_utils.cc" "src/editing/CMakeFiles/oneedit_editing.dir/write_utils.cc.o" "gcc" "src/editing/CMakeFiles/oneedit_editing.dir/write_utils.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oneedit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/oneedit_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/oneedit_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
