# Empty dependencies file for oneedit_editing.
# This may be replaced when dependencies are built.
