file(REMOVE_RECURSE
  "liboneedit_editing.a"
)
