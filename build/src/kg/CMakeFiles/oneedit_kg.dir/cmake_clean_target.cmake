file(REMOVE_RECURSE
  "liboneedit_kg.a"
)
