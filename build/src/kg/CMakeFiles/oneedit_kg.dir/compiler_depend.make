# Empty compiler generated dependencies file for oneedit_kg.
# This may be replaced when dependencies are built.
