file(REMOVE_RECURSE
  "CMakeFiles/oneedit_kg.dir/dictionary.cc.o"
  "CMakeFiles/oneedit_kg.dir/dictionary.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/dot_export.cc.o"
  "CMakeFiles/oneedit_kg.dir/dot_export.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/graph_query.cc.o"
  "CMakeFiles/oneedit_kg.dir/graph_query.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/knowledge_graph.cc.o"
  "CMakeFiles/oneedit_kg.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/pattern_query.cc.o"
  "CMakeFiles/oneedit_kg.dir/pattern_query.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/relation_schema.cc.o"
  "CMakeFiles/oneedit_kg.dir/relation_schema.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/rules.cc.o"
  "CMakeFiles/oneedit_kg.dir/rules.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/triple_store.cc.o"
  "CMakeFiles/oneedit_kg.dir/triple_store.cc.o.d"
  "CMakeFiles/oneedit_kg.dir/wal.cc.o"
  "CMakeFiles/oneedit_kg.dir/wal.cc.o.d"
  "liboneedit_kg.a"
  "liboneedit_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
