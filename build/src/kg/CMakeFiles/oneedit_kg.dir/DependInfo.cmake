
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/dictionary.cc" "src/kg/CMakeFiles/oneedit_kg.dir/dictionary.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/dictionary.cc.o.d"
  "/root/repo/src/kg/dot_export.cc" "src/kg/CMakeFiles/oneedit_kg.dir/dot_export.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/dot_export.cc.o.d"
  "/root/repo/src/kg/graph_query.cc" "src/kg/CMakeFiles/oneedit_kg.dir/graph_query.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/graph_query.cc.o.d"
  "/root/repo/src/kg/knowledge_graph.cc" "src/kg/CMakeFiles/oneedit_kg.dir/knowledge_graph.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/kg/pattern_query.cc" "src/kg/CMakeFiles/oneedit_kg.dir/pattern_query.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/pattern_query.cc.o.d"
  "/root/repo/src/kg/relation_schema.cc" "src/kg/CMakeFiles/oneedit_kg.dir/relation_schema.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/relation_schema.cc.o.d"
  "/root/repo/src/kg/rules.cc" "src/kg/CMakeFiles/oneedit_kg.dir/rules.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/rules.cc.o.d"
  "/root/repo/src/kg/triple_store.cc" "src/kg/CMakeFiles/oneedit_kg.dir/triple_store.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/triple_store.cc.o.d"
  "/root/repo/src/kg/wal.cc" "src/kg/CMakeFiles/oneedit_kg.dir/wal.cc.o" "gcc" "src/kg/CMakeFiles/oneedit_kg.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oneedit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
