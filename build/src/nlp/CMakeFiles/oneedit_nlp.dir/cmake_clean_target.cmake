file(REMOVE_RECURSE
  "liboneedit_nlp.a"
)
