
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/gazetteer.cc" "src/nlp/CMakeFiles/oneedit_nlp.dir/gazetteer.cc.o" "gcc" "src/nlp/CMakeFiles/oneedit_nlp.dir/gazetteer.cc.o.d"
  "/root/repo/src/nlp/intent_classifier.cc" "src/nlp/CMakeFiles/oneedit_nlp.dir/intent_classifier.cc.o" "gcc" "src/nlp/CMakeFiles/oneedit_nlp.dir/intent_classifier.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "src/nlp/CMakeFiles/oneedit_nlp.dir/tokenizer.cc.o" "gcc" "src/nlp/CMakeFiles/oneedit_nlp.dir/tokenizer.cc.o.d"
  "/root/repo/src/nlp/triple_extractor.cc" "src/nlp/CMakeFiles/oneedit_nlp.dir/triple_extractor.cc.o" "gcc" "src/nlp/CMakeFiles/oneedit_nlp.dir/triple_extractor.cc.o.d"
  "/root/repo/src/nlp/utterance_generator.cc" "src/nlp/CMakeFiles/oneedit_nlp.dir/utterance_generator.cc.o" "gcc" "src/nlp/CMakeFiles/oneedit_nlp.dir/utterance_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oneedit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/oneedit_kg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
