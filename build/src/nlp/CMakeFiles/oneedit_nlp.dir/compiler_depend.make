# Empty compiler generated dependencies file for oneedit_nlp.
# This may be replaced when dependencies are built.
