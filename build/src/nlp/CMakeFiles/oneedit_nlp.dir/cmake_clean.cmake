file(REMOVE_RECURSE
  "CMakeFiles/oneedit_nlp.dir/gazetteer.cc.o"
  "CMakeFiles/oneedit_nlp.dir/gazetteer.cc.o.d"
  "CMakeFiles/oneedit_nlp.dir/intent_classifier.cc.o"
  "CMakeFiles/oneedit_nlp.dir/intent_classifier.cc.o.d"
  "CMakeFiles/oneedit_nlp.dir/tokenizer.cc.o"
  "CMakeFiles/oneedit_nlp.dir/tokenizer.cc.o.d"
  "CMakeFiles/oneedit_nlp.dir/triple_extractor.cc.o"
  "CMakeFiles/oneedit_nlp.dir/triple_extractor.cc.o.d"
  "CMakeFiles/oneedit_nlp.dir/utterance_generator.cc.o"
  "CMakeFiles/oneedit_nlp.dir/utterance_generator.cc.o.d"
  "liboneedit_nlp.a"
  "liboneedit_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
