file(REMOVE_RECURSE
  "liboneedit_util.a"
)
