# Empty dependencies file for oneedit_util.
# This may be replaced when dependencies are built.
