file(REMOVE_RECURSE
  "CMakeFiles/oneedit_util.dir/logging.cc.o"
  "CMakeFiles/oneedit_util.dir/logging.cc.o.d"
  "CMakeFiles/oneedit_util.dir/math.cc.o"
  "CMakeFiles/oneedit_util.dir/math.cc.o.d"
  "CMakeFiles/oneedit_util.dir/rng.cc.o"
  "CMakeFiles/oneedit_util.dir/rng.cc.o.d"
  "CMakeFiles/oneedit_util.dir/status.cc.o"
  "CMakeFiles/oneedit_util.dir/status.cc.o.d"
  "CMakeFiles/oneedit_util.dir/string_util.cc.o"
  "CMakeFiles/oneedit_util.dir/string_util.cc.o.d"
  "CMakeFiles/oneedit_util.dir/table_printer.cc.o"
  "CMakeFiles/oneedit_util.dir/table_printer.cc.o.d"
  "liboneedit_util.a"
  "liboneedit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
