file(REMOVE_RECURSE
  "CMakeFiles/oneedit_data.dir/academic.cc.o"
  "CMakeFiles/oneedit_data.dir/academic.cc.o.d"
  "CMakeFiles/oneedit_data.dir/companies.cc.o"
  "CMakeFiles/oneedit_data.dir/companies.cc.o.d"
  "CMakeFiles/oneedit_data.dir/name_pool.cc.o"
  "CMakeFiles/oneedit_data.dir/name_pool.cc.o.d"
  "CMakeFiles/oneedit_data.dir/politicians.cc.o"
  "CMakeFiles/oneedit_data.dir/politicians.cc.o.d"
  "CMakeFiles/oneedit_data.dir/world_builder.cc.o"
  "CMakeFiles/oneedit_data.dir/world_builder.cc.o.d"
  "liboneedit_data.a"
  "liboneedit_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
