file(REMOVE_RECURSE
  "liboneedit_data.a"
)
