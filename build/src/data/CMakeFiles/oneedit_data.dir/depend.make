# Empty dependencies file for oneedit_data.
# This may be replaced when dependencies are built.
