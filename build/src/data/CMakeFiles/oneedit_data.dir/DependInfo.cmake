
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/academic.cc" "src/data/CMakeFiles/oneedit_data.dir/academic.cc.o" "gcc" "src/data/CMakeFiles/oneedit_data.dir/academic.cc.o.d"
  "/root/repo/src/data/companies.cc" "src/data/CMakeFiles/oneedit_data.dir/companies.cc.o" "gcc" "src/data/CMakeFiles/oneedit_data.dir/companies.cc.o.d"
  "/root/repo/src/data/name_pool.cc" "src/data/CMakeFiles/oneedit_data.dir/name_pool.cc.o" "gcc" "src/data/CMakeFiles/oneedit_data.dir/name_pool.cc.o.d"
  "/root/repo/src/data/politicians.cc" "src/data/CMakeFiles/oneedit_data.dir/politicians.cc.o" "gcc" "src/data/CMakeFiles/oneedit_data.dir/politicians.cc.o.d"
  "/root/repo/src/data/world_builder.cc" "src/data/CMakeFiles/oneedit_data.dir/world_builder.cc.o" "gcc" "src/data/CMakeFiles/oneedit_data.dir/world_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oneedit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/oneedit_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/oneedit_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
