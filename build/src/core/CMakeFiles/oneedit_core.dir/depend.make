# Empty dependencies file for oneedit_core.
# This may be replaced when dependencies are built.
