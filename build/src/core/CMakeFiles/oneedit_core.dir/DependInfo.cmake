
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_io.cc" "src/core/CMakeFiles/oneedit_core.dir/config_io.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/config_io.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/oneedit_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/controller.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/oneedit_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/interpreter.cc" "src/core/CMakeFiles/oneedit_core.dir/interpreter.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/interpreter.cc.o.d"
  "/root/repo/src/core/oneedit.cc" "src/core/CMakeFiles/oneedit_core.dir/oneedit.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/oneedit.cc.o.d"
  "/root/repo/src/core/oneedit_editor.cc" "src/core/CMakeFiles/oneedit_core.dir/oneedit_editor.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/oneedit_editor.cc.o.d"
  "/root/repo/src/core/security.cc" "src/core/CMakeFiles/oneedit_core.dir/security.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/security.cc.o.d"
  "/root/repo/src/core/statistics.cc" "src/core/CMakeFiles/oneedit_core.dir/statistics.cc.o" "gcc" "src/core/CMakeFiles/oneedit_core.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oneedit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/oneedit_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/oneedit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/editing/CMakeFiles/oneedit_editing.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/oneedit_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
