file(REMOVE_RECURSE
  "liboneedit_core.a"
)
