file(REMOVE_RECURSE
  "CMakeFiles/oneedit_core.dir/config_io.cc.o"
  "CMakeFiles/oneedit_core.dir/config_io.cc.o.d"
  "CMakeFiles/oneedit_core.dir/controller.cc.o"
  "CMakeFiles/oneedit_core.dir/controller.cc.o.d"
  "CMakeFiles/oneedit_core.dir/cost_model.cc.o"
  "CMakeFiles/oneedit_core.dir/cost_model.cc.o.d"
  "CMakeFiles/oneedit_core.dir/interpreter.cc.o"
  "CMakeFiles/oneedit_core.dir/interpreter.cc.o.d"
  "CMakeFiles/oneedit_core.dir/oneedit.cc.o"
  "CMakeFiles/oneedit_core.dir/oneedit.cc.o.d"
  "CMakeFiles/oneedit_core.dir/oneedit_editor.cc.o"
  "CMakeFiles/oneedit_core.dir/oneedit_editor.cc.o.d"
  "CMakeFiles/oneedit_core.dir/security.cc.o"
  "CMakeFiles/oneedit_core.dir/security.cc.o.d"
  "CMakeFiles/oneedit_core.dir/statistics.cc.o"
  "CMakeFiles/oneedit_core.dir/statistics.cc.o.d"
  "liboneedit_core.a"
  "liboneedit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
