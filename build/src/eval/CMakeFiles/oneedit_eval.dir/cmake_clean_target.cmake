file(REMOVE_RECURSE
  "liboneedit_eval.a"
)
