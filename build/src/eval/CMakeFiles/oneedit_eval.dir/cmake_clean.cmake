file(REMOVE_RECURSE
  "CMakeFiles/oneedit_eval.dir/harness.cc.o"
  "CMakeFiles/oneedit_eval.dir/harness.cc.o.d"
  "CMakeFiles/oneedit_eval.dir/metrics.cc.o"
  "CMakeFiles/oneedit_eval.dir/metrics.cc.o.d"
  "CMakeFiles/oneedit_eval.dir/probe_eval.cc.o"
  "CMakeFiles/oneedit_eval.dir/probe_eval.cc.o.d"
  "CMakeFiles/oneedit_eval.dir/report.cc.o"
  "CMakeFiles/oneedit_eval.dir/report.cc.o.d"
  "liboneedit_eval.a"
  "liboneedit_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneedit_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
