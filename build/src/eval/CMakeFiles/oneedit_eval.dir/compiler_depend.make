# Empty compiler generated dependencies file for oneedit_eval.
# This may be replaced when dependencies are built.
