// Extension bench: lifelong (sequential-all) editing — the other standard
// protocol in the editing literature (GRACE; Transformer-Patcher; WilKE).
// Every case's edit is applied to ONE model instance with no resets; metrics
// are evaluated at the end, as a function of how many edits the model has
// absorbed. Weight-modifying baselines decay with the edit count (super-
// position damage accumulates), memory-based methods and OneEdit hold.
//
// Usage: lifelong_editing [--dataset politicians|academic]

#include <cstring>
#include <iostream>
#include <string>

#include "data/dataset.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

const char* const kMethods[] = {"FT",    "ROME",           "MEMIT",
                                "GRACE", "OneEdit (GRACE)", "OneEdit (MEMIT)"};

int RunLifelong(const std::string& dataset_name) {
  Dataset (*factory)(const DatasetOptions&) =
      dataset_name == "academic" ? &BuildAcademicFigures
                                 : &BuildAmericanPoliticians;
  Harness harness([factory] { return factory(DatasetOptions{}); },
                  GptJSimConfig());

  TablePrinter table({"Method", "Edits", "Reliability", "Locality",
                      "One-Hop", "Average"});
  for (const char* method : kMethods) {
    const auto spec = ParseMethodSpec(method);
    for (const size_t edits : {size_t{10}, size_t{25}, size_t{50}}) {
      RunOptions options;
      options.lifelong = true;
      options.max_cases = edits;
      options.controller.num_generation_triples = 8;
      const auto result = harness.Run(*spec, options);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      const MetricScores& s = result->scores;
      table.AddRow({result->method, std::to_string(edits),
                    FormatDouble(s.reliability, 3),
                    FormatDouble(s.locality, 3), FormatDouble(s.one_hop, 3),
                    FormatDouble(s.Average(), 3)});
    }
    table.AddSeparator();
  }

  std::cout << "Lifelong (sequential-all) editing on the " << dataset_name
            << " dataset, GPT-J-6B(sim)\n";
  table.Print(std::cout);
  std::cout << "\nReading: FT collapses immediately; ROME/MEMIT decay as "
               "edits accumulate; GRACE is\nflat but has zero portability. "
               "OneEdit (GRACE) keeps both lifelong stability AND\n"
               "portability — the right OneEdit configuration for this "
               "protocol. OneEdit (MEMIT)\nexhibits *write amplification*: "
               "each edit writes ~12 associations (reverse, alias,\n"
               "generation triples), so its weight budget is exhausted ~12x "
               "sooner than bare MEMIT —\na capacity trade-off the paper's "
               "per-edit evaluation does not surface.\n";
  return 0;
}

}  // namespace
}  // namespace oneedit

int main(int argc, char** argv) {
  std::string dataset = "politicians";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dataset") == 0 && i + 1 < argc) {
      dataset = argv[++i];
    }
  }
  return oneedit::RunLifelong(dataset);
}
