// Reproduces Figure 3: the One-Hop metric as a function of the number of
// generation triples n, for OneEdit (GRACE) and OneEdit (MEMIT) on the
// GPT-J-6B simulated model (American politicians dataset). The horizontal
// reference lines are the base methods (GRACE / MEMIT) without OneEdit.
//
// Expected shape (paper §4.5): at small n the inference triples are cut from
// the nearest-neighbor selection and OneEdit underperforms; as n grows both
// variants rise; OneEdit (GRACE) plateaus while OneEdit (MEMIT) declines at
// large n because MEMIT's joint batch dilutes per-fact strength and adds
// crosstalk.

#include <iostream>
#include <vector>

#include "data/dataset.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

int RunFig3() {
  const std::vector<size_t> sweep = {0, 1, 2, 4, 8, 16, 32};

  Harness harness([] { return BuildAmericanPoliticians(DatasetOptions{}); },
                  GptJSimConfig());

  // Baseline references.
  double grace_base = 0.0;
  double memit_base = 0.0;
  for (const char* base : {"GRACE", "MEMIT"}) {
    const auto result = harness.Run(*ParseMethodSpec(base), RunOptions{});
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    (std::string(base) == "GRACE" ? grace_base : memit_base) =
        result->scores.one_hop;
  }

  TablePrinter table({"n (generation triples)", "OneEdit (GRACE) One-Hop",
                      "OneEdit (MEMIT) One-Hop"});
  std::vector<double> grace_series;
  std::vector<double> memit_series;
  for (const size_t n : sweep) {
    RunOptions options;
    options.controller.num_generation_triples = n;
    double grace_score = 0.0;
    double memit_score = 0.0;
    for (const char* method : {"OneEdit (GRACE)", "OneEdit (MEMIT)"}) {
      const auto result = harness.Run(*ParseMethodSpec(method), options);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      (std::string(method) == "OneEdit (GRACE)" ? grace_score : memit_score) =
          result->scores.one_hop;
    }
    grace_series.push_back(grace_score);
    memit_series.push_back(memit_score);
    table.AddRow({std::to_string(n), FormatDouble(grace_score, 3),
                  FormatDouble(memit_score, 3)});
  }

  std::cout << "Figure 3: One-Hop vs number of generation triples n "
               "(GPT-J-6B(sim), American politicians)\n";
  table.Print(std::cout);
  std::cout << "Reference: GRACE baseline One-Hop = "
            << FormatDouble(grace_base, 3)
            << ", MEMIT baseline One-Hop = " << FormatDouble(memit_base, 3)
            << "\n\n";

  // ASCII chart.
  std::cout << "One-Hop\n";
  for (int level = 10; level >= 0; --level) {
    const double threshold = level / 10.0;
    std::cout << (level % 2 == 0 ? FormatDouble(threshold, 1) : "   ") << " |";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const bool g = grace_series[i] >= threshold;
      const bool m = memit_series[i] >= threshold;
      if (g && m) {
        std::cout << "  B  ";
      } else if (g) {
        std::cout << "  G  ";
      } else if (m) {
        std::cout << "  M  ";
      } else {
        std::cout << "     ";
      }
    }
    std::cout << "\n";
  }
  std::cout << "    +";
  for (size_t i = 0; i < sweep.size(); ++i) std::cout << "-----";
  std::cout << "\n     ";
  for (const size_t n : sweep) {
    std::string label = std::to_string(n);
    while (label.size() < 5) label += " ";
    std::cout << label;
  }
  std::cout << "n\n(G = OneEdit(GRACE), M = OneEdit(MEMIT), B = both)\n";
  return 0;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunFig3(); }
