// Reproduces Figure 4: the effect of logical rules on the One-Hop metric.
// For each simulated model (GPT-J-6B, Qwen2-7B) and each OneEdit variant,
// runs with the Controller's rule expansion disabled vs enabled (n = 8).
//
// Expected shape (paper §4.6): without rules the edited model merely
// memorizes the edit and cannot answer multi-hop questions; with rules the
// composed knowledge is written in explicitly and One-Hop rises sharply.

#include <iostream>

#include "data/dataset.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

int RunFig4() {
  TablePrinter table({"Model", "Method", "One-Hop (w/o rules)",
                      "One-Hop (w/ rules)"});

  for (const ModelConfig& model : {GptJSimConfig(), Qwen2SimConfig()}) {
    Harness harness([] { return BuildAmericanPoliticians(DatasetOptions{}); },
                    model);
    for (const char* method : {"OneEdit (GRACE)", "OneEdit (MEMIT)"}) {
      double scores[2] = {0.0, 0.0};
      for (const bool rules : {false, true}) {
        RunOptions options;
        options.controller.num_generation_triples = 8;
        options.controller.use_logical_rules = rules;
        const auto result = harness.Run(*ParseMethodSpec(method), options);
        if (!result.ok()) {
          std::cerr << result.status().ToString() << "\n";
          return 1;
        }
        scores[rules ? 1 : 0] = result->scores.one_hop;
      }
      table.AddRow({model.name, method, FormatDouble(scores[0], 3),
                    FormatDouble(scores[1], 3)});
    }
    table.AddSeparator();
  }

  std::cout << "Figure 4: impact of logical rules on One-Hop "
               "(American politicians, n = 8)\n";
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunFig4(); }
