// Reproduces Table 2: multi-user knowledge editing. Users = k means each
// piece of knowledge is edited k times in sequence, once per user, each to a
// different outcome; metrics are evaluated against the final outcome.
// Baselines pile edits onto the same slot (knowledge distortion); OneEdit's
// Controller rolls the previous edit back first.
//
// The paper's Table 2 runs the American-politicians dataset; pass
// --dataset academic for the other domain. Usage:
//   table2_multi_user [--cases N] [--dataset politicians|academic]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

const char* const kMethods[] = {"FT",    "ROME",           "MEMIT",
                                "GRACE", "OneEdit (GRACE)", "OneEdit (MEMIT)"};

int RunTable2(size_t max_cases, const std::string& dataset_name) {
  Dataset (*factory)(const DatasetOptions&) =
      dataset_name == "academic" ? &BuildAcademicFigures
                                 : &BuildAmericanPoliticians;

  TablePrinter table({"Method", "Reliability", "Locality", "Reverse",
                      "One-Hop", "Sub-Replace", "Average"});

  for (const ModelConfig& model : {GptJSimConfig(), Qwen2SimConfig()}) {
    Harness harness([factory] { return factory(DatasetOptions{}); }, model);
    for (const size_t users : {size_t{2}, size_t{3}}) {
      table.AddSeparator();
      table.AddSection(model.name + ", Users = " + std::to_string(users));
      table.AddSeparator();
      for (const char* method : kMethods) {
        const auto spec = ParseMethodSpec(method);
        RunOptions options;
        options.users = users;
        options.controller.num_generation_triples = 8;
        options.max_cases = max_cases;
        const auto result = harness.Run(*spec, options);
        if (!result.ok()) {
          std::cerr << "run failed for " << method << ": "
                    << result.status().ToString() << "\n";
          return 1;
        }
        const MetricScores& s = result->scores;
        table.AddRow({result->method, FormatDouble(s.reliability, 3),
                      FormatDouble(s.locality, 3), FormatDouble(s.reverse, 3),
                      FormatDouble(s.one_hop, 3),
                      FormatDouble(s.sub_replace, 3),
                      FormatDouble(s.Average(), 3)});
      }
    }
  }

  std::cout << "Table 2: multi-user (sequential same-slot) knowledge editing "
            << "on the " << dataset_name << " dataset\n";
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace oneedit

int main(int argc, char** argv) {
  size_t max_cases = SIZE_MAX;
  std::string dataset = "politicians";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cases") == 0 && i + 1 < argc) {
      max_cases = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--dataset") == 0 && i + 1 < argc) {
      dataset = argv[++i];
    }
  }
  return oneedit::RunTable2(max_cases, dataset);
}
