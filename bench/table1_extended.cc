// Extension of Table 1 beyond the paper: adds the two related-work baselines
// the paper names but does not run — MEND (meta-learning) and SERAC
// (memory-based) — and their OneEdit-wrapped variants, on the GPT-J-6B
// simulated model. The paper's future-work section ("we will extend the
// application scope of OneEdit to encompass a broader range of methods")
// motivates this bench.
//
// Usage: table1_extended [--cases N]

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "data/dataset.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

const char* const kMethods[] = {
    "FT",    "ROME",  "MEMIT", "GRACE", "MEND",  "SERAC",
    "OneEdit (GRACE)", "OneEdit (MEMIT)", "OneEdit (MEND)",
    "OneEdit (SERAC)"};

int RunExtended(size_t max_cases) {
  TablePrinter table({"Method", "Reliability", "Locality", "Reverse",
                      "One-Hop", "Sub-Replace", "Average"});

  struct DatasetSpec {
    const char* label;
    Dataset (*factory)(const DatasetOptions&);
  };
  const DatasetSpec datasets[] = {
      {"American politicians", &BuildAmericanPoliticians},
      {"Academic figures", &BuildAcademicFigures},
  };

  const ModelConfig model = GptJSimConfig();
  for (const DatasetSpec& dataset : datasets) {
    table.AddSeparator();
    table.AddSection(model.name + " — " + dataset.label + " dataset");
    table.AddSeparator();
    Harness harness([&dataset] { return dataset.factory(DatasetOptions{}); },
                    model);
    for (const char* method : kMethods) {
      const auto spec = ParseMethodSpec(method);
      RunOptions options;
      options.controller.num_generation_triples = 8;
      options.max_cases = max_cases;
      const auto result = harness.Run(*spec, options);
      if (!result.ok()) {
        std::cerr << "run failed for " << method << ": "
                  << result.status().ToString() << "\n";
        return 1;
      }
      const MetricScores& s = result->scores;
      table.AddRow({result->method, FormatDouble(s.reliability, 3),
                    FormatDouble(s.locality, 3), FormatDouble(s.reverse, 3),
                    FormatDouble(s.one_hop, 3),
                    FormatDouble(s.sub_replace, 3),
                    FormatDouble(s.Average(), 3)});
    }
  }

  std::cout << "Table 1 (extended): adds MEND (meta-learning) and SERAC "
               "(memory-based) baselines\n";
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace oneedit

int main(int argc, char** argv) {
  size_t max_cases = SIZE_MAX;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cases") == 0 && i + 1 < argc) {
      max_cases = static_cast<size_t>(std::atoll(argv[++i]));
    }
  }
  return oneedit::RunExtended(max_cases);
}
