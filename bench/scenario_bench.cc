// Scenario-matrix harness: seeded workload shapes driven through a LIVE
// EditService (optionally a primary+follower pair), each asserting its
// invariants by scraping the service's own /metrics endpoint — the same
// surface an operator's dashboards read. The point is not throughput; it
// is proving that the serving invariants (zero acknowledged-edit loss,
// quarantine trips, health transitions, profiler top-K matching injected
// skew) hold under every workload shape at once, not just in unit tests.
//
// Scenarios (docs/observability.md "Scenario matrix"):
//   zipf_read_storm  — Zipf-skewed readers; profiler top-K must match the
//                      injected hot set, every acked edit must decode.
//   edit_burst       — burst of flip-flop edits; all acked, all durable,
//                      health stays healthy.
//   poison_storm     — adversarial MEMIT poison amid innocents; quarantine
//                      must trip, innocents must all land.
//   rolling_failover — primary dies mid-traffic; follower promotes; zero
//                      acknowledged loss across the failover.
//   disk_full        — disk runs dry mid-traffic; writes shed typed, reads
//                      keep serving, service heals when space frees.
//   rule_update      — Horn rule added during an edit stream; profiler
//                      rule weights pick it up, no edit is lost.
//
// Per-scenario rows land in BENCH_scenarios.json (cwd); the process exits
// nonzero if any invariant fails.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/name_pool.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "editing/editor.h"
#include "kg/rules.h"
#include "obs/profiler.h"
#include "serving/edit_service.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::Env;
using durability::FaultInjectingEnv;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReplicationRole;
using serving::ServiceHealth;
using serving::Snapshot;

constexpr uint64_t kSeed = 20260808;

// ------------------------------------------------------------ plumbing ----

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

OneEditConfig MemitConfig() {
  OneEditConfig config = GraceConfig();
  config.method = EditingMethodKind::kMemit;
  return config;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = "/tmp/oneedit_scenario_" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds timeout =
                 std::chrono::milliseconds(10000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Value of the sample line "<name> <value>" in Prometheus text.
double Scrape(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/// All members of a labeled family: "<family>{<key>="<label>"} <value>".
std::vector<std::pair<std::string, double>> ScrapeLabeled(
    const std::string& text, const std::string& family) {
  std::vector<std::pair<std::string, double>> out;
  const std::string needle = "\n" + family + "{";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    const size_t open = text.find('"', pos);
    if (open == std::string::npos) break;
    // Label values are escaped; scenario names here are clean, so a plain
    // scan to the closing quote is sufficient.
    const size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    const size_t brace = text.find("} ", close);
    if (brace == std::string::npos) break;
    out.emplace_back(text.substr(open + 1, close - open - 1),
                     std::strtod(text.c_str() + brace + 2, nullptr));
    pos = brace;
  }
  return out;
}

/// The dataset + pretrained model every scenario boots from (the same base
/// image a fleet node would start with).
struct World {
  World()
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
};

/// One scenario verdict: named invariant checks plus free-form detail
/// fields that land as a JSON row.
struct ScenarioResult {
  std::string name;
  bool pass = true;
  std::vector<std::string> failures;
  std::string details;  // "key":value,... (JSON fragment)

  void Check(bool ok, const std::string& invariant) {
    if (!ok) {
      pass = false;
      failures.push_back(invariant);
    }
  }
  void Detail(const std::string& key, const std::string& json_value) {
    if (!details.empty()) details += ",";
    details += "\"" + key + "\":" + json_value;
  }
  void Detail(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value);
    Detail(key, std::string(buf));
  }
};

void ResetProfiler() {
  obs::CostProfiler::Global().ResetForTesting();
  obs::CostProfiler::Global().SetAggregationIntervalMillis(500);
}

// --------------------------------------------------- 1. zipf_read_storm ----

ScenarioResult ZipfReadStorm() {
  ScenarioResult result;
  result.name = "zipf_read_storm";
  ResetProfiler();

  World world;
  EditServiceOptions options;
  options.expose_metrics = true;
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     GraceConfig(), options);
  if (!service.ok()) {
    result.Check(false, "service boots");
    return result;
  }
  const uint16_t port = (*service)->metrics_server()->port();

  // Land every edit first, so the read storm decodes post-edit truth.
  size_t acked = 0;
  for (const EditCase& c : world.dataset.cases) {
    const auto r = (*service)->SubmitAndWait(EditRequest::Edit(c.edit, "zipf"));
    if (r.ok() && r->applied()) ++acked;
  }
  result.Check(acked == world.dataset.cases.size(), "all edits acknowledged");

  // Zipf-skewed read storm: weight 1/(rank+1)^1.5 over the case list, so
  // case 0's subject is the injected hot entity by a wide margin.
  std::vector<double> weights;
  for (size_t r = 0; r < world.dataset.cases.size(); ++r) {
    weights.push_back(1.0 / std::pow(static_cast<double>(r + 1), 1.5));
  }
  constexpr int kReaders = 4;
  constexpr int kReadsPerThread = 5000;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(kSeed + static_cast<uint64_t>(t));
      std::discrete_distribution<size_t> zipf(weights.begin(), weights.end());
      const Snapshot snapshot = *(*service)->GetSnapshot();
      for (int i = 0; i < kReadsPerThread; ++i) {
        const EditCase& c = world.dataset.cases[zipf(rng)];
        (void)snapshot.Ask(c.edit.subject, c.edit.relation);
      }
    });
  }
  for (std::thread& reader : readers) reader.join();

  // Freeze one aggregation cycle, then read the ranking off /metrics like
  // a dashboard would.
  obs::CostProfiler::Global().SetAggregationIntervalMillis(60000);
  obs::CostProfiler::Global().Aggregate();
  const std::string metrics = HttpGet(port, "/metrics");
  result.Check(metrics.find("HTTP/1.0 200") != std::string::npos,
               "/metrics scrapes");

  const auto top_reads =
      ScrapeLabeled(metrics, "oneedit_profiler_hot_entity_reads");
  result.Check(!top_reads.empty(), "profiler top-K gauges exported");
  const std::string hot0 = world.dataset.cases[0].edit.subject;
  const std::string hot1 = world.dataset.cases[1].edit.subject;
  const std::string hot2 = world.dataset.cases[2].edit.subject;
  double hot0_reads = -1.0;
  double max_reads = -1.0;
  std::string max_name;
  size_t hot_in_topk = 0;
  for (const auto& [name, reads] : top_reads) {
    if (name == hot0) hot0_reads = reads;
    if (name == hot0 || name == hot1 || name == hot2) ++hot_in_topk;
    if (reads > max_reads) {
      max_reads = reads;
      max_name = name;
    }
  }
  result.Check(max_name == hot0, "injected hot entity ranks #1 by reads");
  result.Check(hot_in_topk == 3, "injected hot set is inside the top-K");
  result.Check(Scrape(metrics, "oneedit_profiler_entities_tracked") > 0,
               "profiler tracked entities");
  result.Check(Scrape(metrics, "oneedit_profiler_dropped_total") == 0,
               "no profiler drops at this cardinality");

  // Zero acknowledged loss: every acked edit still decodes.
  const Snapshot snapshot = *(*service)->GetSnapshot();
  for (const EditCase& c : world.dataset.cases) {
    const auto decode = snapshot.Ask(c.edit.subject, c.edit.relation);
    result.Check(decode.ok() && decode->entity == c.edit.object,
                 "acked edit decodes: " + c.edit.subject);
  }

  result.Detail("reads", static_cast<double>(kReaders) * kReadsPerThread);
  result.Detail("hot_entity", "\"" + hot0 + "\"");
  result.Detail("hot_entity_reads", hot0_reads);
  result.Detail("entities_tracked",
                Scrape(metrics, "oneedit_profiler_entities_tracked"));
  (*service)->Stop();
  return result;
}

// ------------------------------------------------------- 2. edit_burst ----

ScenarioResult EditBurst() {
  ScenarioResult result;
  result.name = "edit_burst";
  ResetProfiler();

  const std::string dir = TempDirFor("edit_burst");
  DurabilityOptions dopts;
  dopts.dir = dir;
  auto mgr = DurabilityManager::Open(dopts);
  if (!mgr.ok()) {
    result.Check(false, "durability opens");
    return result;
  }

  World world;
  EditServiceOptions options;
  options.expose_metrics = true;
  options.durability = mgr->get();
  options.max_batch_size = 8;
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     GraceConfig(), options);
  if (!service.ok()) {
    result.Check(false, "service boots");
    return result;
  }
  const uint16_t port = (*service)->metrics_server()->port();

  // Burst: two async rounds, flip then flop, all in flight at once.
  std::vector<std::future<StatusOr<EditResult>>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const EditCase& c : world.dataset.cases) {
      NamedTriple triple = c.edit;
      if (round == 1) triple.object = c.old_object;
      futures.push_back((*service)->Submit(EditRequest::Edit(triple, "burst")));
    }
  }
  size_t acked = 0;
  for (auto& future : futures) {
    const auto r = future.get();
    if (r.ok() && r->applied()) ++acked;
  }
  (*service)->Drain();
  result.Check(acked == futures.size(), "every burst edit acknowledged");

  const std::string metrics = HttpGet(port, "/metrics");
  result.Check(Scrape(metrics, "oneedit_edits_accepted_total") ==
                   static_cast<double>(acked),
               "metrics agree with acknowledged count");
  result.Check(Scrape(metrics, "oneedit_serving_batches_total") >= 1,
               "writer coalesced batches");
  result.Check(Scrape(metrics, "oneedit_wal_commits_total") >= 1,
               "burst reached the journal");
  result.Check(
      metrics.find("oneedit_service_health{state=\"healthy\"} 1") !=
          std::string::npos,
      "service stays healthy");

  // Zero acknowledged loss: round 2 (the flop) is the final truth.
  const Snapshot snapshot = *(*service)->GetSnapshot();
  for (const EditCase& c : world.dataset.cases) {
    const auto decode = snapshot.Ask(c.edit.subject, c.edit.relation);
    result.Check(decode.ok() && decode->entity == c.old_object,
                 "final round decodes: " + c.edit.subject);
  }

  result.Detail("edits_acked", static_cast<double>(acked));
  result.Detail("batches", Scrape(metrics, "oneedit_serving_batches_total"));
  result.Detail("wal_commits", Scrape(metrics, "oneedit_wal_commits_total"));
  (*service)->Stop();
  return result;
}

// ----------------------------------------------------- 3. poison_storm ----

ScenarioResult PoisonStorm() {
  ScenarioResult result;
  result.name = "poison_storm";
  ResetProfiler();

  const std::string dir = TempDirFor("poison_storm");
  DurabilityOptions dopts;
  dopts.dir = dir;
  dopts.checkpoint_interval = 0;  // keep every verdict in the WAL
  auto mgr = DurabilityManager::Open(dopts);
  if (!mgr.ok()) {
    result.Check(false, "durability opens");
    return result;
  }

  World world;
  EditServiceOptions options;
  options.expose_metrics = true;
  options.durability = mgr->get();
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     MemitConfig(), options);
  if (!service.ok()) {
    result.Check(false, "service boots");
    return result;
  }
  const uint16_t port = (*service)->metrics_server()->port();

  // Make one MEMIT slot toxic: inflate its live-edit ledger so the next
  // edit against it drags collateral drift past the canary threshold.
  const NamedTriple poison{names::State(20), "governor", names::Person(42)};
  (*service)->WithExclusive([&](OneEditSystem& system) {
    EditingMethod& method = system.editor().method();
    for (int i = 0; i < 3; ++i) {
      auto delta = method.ApplyEdit(world.model.get(), poison);
      if (delta.ok()) ApplyWeightDelta(world.model.get(), *delta, -1.0);
    }
    return 0;
  });

  // Adversarial storm: innocents with the poison woven in, twice.
  size_t innocents_acked = 0;
  size_t quarantined = 0;
  for (size_t i = 0; i < 8; ++i) {
    const auto r = (*service)->SubmitAndWait(
        EditRequest::Edit(world.dataset.cases[i].edit, "alice"));
    if (r.ok() && r->kind == EditResult::Kind::kEdited) ++innocents_acked;
    if (i == 2 || i == 5) {
      const auto p = (*service)->SubmitAndWait(
          EditRequest::Edit(poison, "mallory"));
      if (p.ok() && p->quarantined()) ++quarantined;
    }
  }
  result.Check(innocents_acked == 8, "every innocent edit landed");
  result.Check(quarantined >= 1, "poison was quarantined");

  const std::string metrics = HttpGet(port, "/metrics");
  result.Check(Scrape(metrics, "oneedit_quarantined_edits_total") >= 1,
               "quarantine counter tripped on /metrics");
  // Poison applies (ticking accepted) before the canary rolls it back, so
  // accepted minus quarantined must equal the innocents that stayed.
  result.Check(Scrape(metrics, "oneedit_edits_accepted_total") -
                       Scrape(metrics, "oneedit_quarantined_edits_total") ==
                   static_cast<double>(innocents_acked),
               "accepted minus quarantined equals surviving innocents");
  result.Check(Scrape(metrics, "oneedit_rollback_batches_total") >= 1,
               "poison batch was rolled back");
  result.Check(
      metrics.find("oneedit_service_health{state=\"healthy\"} 1") !=
          std::string::npos,
      "service stays healthy through the storm");

  // Zero acknowledged loss, and the poison never decodes.
  const Snapshot snapshot = *(*service)->GetSnapshot();
  for (size_t i = 0; i < 8; ++i) {
    const EditCase& c = world.dataset.cases[i];
    const auto decode = snapshot.Ask(c.edit.subject, c.edit.relation);
    result.Check(decode.ok() && decode->entity == c.edit.object,
                 "innocent decodes: " + c.edit.subject);
  }
  const auto poisoned = snapshot.Ask(poison.subject, poison.relation);
  result.Check(poisoned.ok() && poisoned->entity != poison.object,
               "quarantined poison never decodes");

  result.Detail("quarantined",
                Scrape(metrics, "oneedit_quarantined_edits_total"));
  result.Detail("innocents_acked", static_cast<double>(innocents_acked));
  result.Detail("rollbacks",
                Scrape(metrics, "oneedit_rollback_batches_total"));
  (*service)->Stop();
  return result;
}

// ------------------------------------------------- 4. rolling_failover ----

/// A durably-backed replication node with its own metrics listener.
struct Node {
  Node(const std::string& dir_name, ReplicationRole role,
       uint16_t primary_port = 0)
      : dir(TempDirFor(dir_name)) {
    DurabilityOptions dopts;
    dopts.dir = dir;
    auto mgr = DurabilityManager::Open(dopts);
    if (!mgr.ok()) return;
    durability = std::move(mgr).value();

    EditServiceOptions options;
    options.expose_metrics = true;
    options.durability = durability.get();
    options.replication.role = role;
    options.replication.primary_port = primary_port;
    options.replication.poll_interval = std::chrono::milliseconds(5);
    auto created = EditService::Create(&world.dataset.kg, world.model.get(),
                                       GraceConfig(), options);
    if (created.ok()) service = std::move(created).value();
  }

  uint16_t replication_port() const {
    const auto* server = service->replication_server();
    return server == nullptr ? 0 : server->port();
  }

  std::string dir;
  World world;
  std::unique_ptr<DurabilityManager> durability;
  std::unique_ptr<EditService> service;
};

ScenarioResult RollingFailover() {
  ScenarioResult result;
  result.name = "rolling_failover";
  ResetProfiler();

  auto primary = std::make_unique<Node>("failover_p",
                                        ReplicationRole::kPrimary);
  if (primary->service == nullptr) {
    result.Check(false, "primary boots");
    return result;
  }
  Node follower("failover_f", ReplicationRole::kFollower,
                primary->replication_port());
  if (follower.service == nullptr) {
    result.Check(false, "follower boots");
    return result;
  }

  // Phase 1: six edits land on the old primary and replicate.
  const std::vector<EditCase> cases(follower.world.dataset.cases);
  size_t phase1_acked = 0;
  for (size_t i = 0; i < 6; ++i) {
    const auto r = primary->service->SubmitAndWait(
        EditRequest::Edit(cases[i].edit, "alice"));
    if (r.ok() && r->applied()) ++phase1_acked;
  }
  result.Check(phase1_acked == 6, "phase-1 edits acknowledged");
  const uint64_t head = primary->service->applied_sequence();
  result.Check(WaitFor([&] {
                 return follower.service->applied_sequence() >= head;
               }),
               "follower caught up before the failure");

  // Readers keep hammering the follower while the primary dies under them.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    std::mt19937_64 rng(kSeed);
    while (!stop.load(std::memory_order_relaxed)) {
      const EditCase& c = cases[rng() % 6];
      const auto snapshot = follower.service->GetSnapshot();
      if (snapshot.ok()) {
        (void)snapshot->Ask(c.edit.subject, c.edit.relation);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // The primary dies; the follower is promoted mid-traffic.
  primary->service->Stop();
  primary.reset();
  const Status promoted = follower.service->Promote();
  result.Check(promoted.ok(), "follower promotes");

  // Phase 2: the remaining six edits land on the new primary.
  size_t phase2_acked = 0;
  for (size_t i = 6; i < cases.size(); ++i) {
    const auto r = follower.service->SubmitAndWait(
        EditRequest::Edit(cases[i].edit, "alice"));
    if (r.ok() && r->applied()) ++phase2_acked;
  }
  stop.store(true);
  reader.join();
  result.Check(phase2_acked == 6, "phase-2 edits acknowledged post-failover");
  result.Check(reads.load() > 0, "reads kept flowing through the failover");

  const uint16_t port = follower.service->metrics_server()->port();
  const std::string metrics = HttpGet(port, "/metrics");
  result.Check(Scrape(metrics, "oneedit_repl_batches_applied_total") >= 1,
               "survivor applied shipped batches while following");
  // Followers tick the accepted counter when applying replicated batches,
  // so the survivor's count must span both terms.
  result.Check(Scrape(metrics, "oneedit_edits_accepted_total") ==
                   static_cast<double>(phase1_acked + phase2_acked),
               "survivor's accepted counter spans both terms");
  result.Check(
      metrics.find("oneedit_service_health{state=\"healthy\"} 1") !=
          std::string::npos,
      "survivor is healthy");

  // Zero acknowledged loss across the failover: every edit either term
  // acknowledged still decodes on the survivor.
  const Snapshot snapshot = *follower.service->GetSnapshot();
  for (const EditCase& c : cases) {
    const auto decode = snapshot.Ask(c.edit.subject, c.edit.relation);
    result.Check(decode.ok() && decode->entity == c.edit.object,
                 "acked edit survives failover: " + c.edit.subject);
  }

  result.Detail("phase1_acked", static_cast<double>(phase1_acked));
  result.Detail("phase2_acked", static_cast<double>(phase2_acked));
  result.Detail("reads_during_failover", static_cast<double>(reads.load()));
  result.Detail("repl_batches_applied",
                Scrape(metrics, "oneedit_repl_batches_applied_total"));
  follower.service->Stop();
  return result;
}

// -------------------------------------------------------- 5. disk_full ----

ScenarioResult DiskFull() {
  ScenarioResult result;
  result.name = "disk_full";
  ResetProfiler();

  const std::string dir = TempDirFor("disk_full");
  FaultInjectingEnv fault(Env::Default());
  DurabilityOptions dopts;
  dopts.dir = dir;
  dopts.env = &fault;
  auto mgr = DurabilityManager::Open(dopts);
  if (!mgr.ok()) {
    result.Check(false, "durability opens");
    return result;
  }

  World world;
  EditServiceOptions options;
  options.expose_metrics = true;
  options.durability = mgr->get();
  options.self_heal.heal_probe_interval = std::chrono::milliseconds(10);
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     GraceConfig(), options);
  if (!service.ok()) {
    result.Check(false, "service boots");
    return result;
  }
  const uint16_t port = (*service)->metrics_server()->port();

  // Healthy traffic first: four edits acknowledged and durable.
  size_t acked = 0;
  for (size_t i = 0; i < 4; ++i) {
    const auto r = (*service)->SubmitAndWait(
        EditRequest::Edit(world.dataset.cases[i].edit, "alice"));
    if (r.ok() && r->applied()) ++acked;
  }
  result.Check(acked == 4, "pre-outage edits acknowledged");

  // The disk runs dry mid-traffic: the next write must be shed typed, not
  // acknowledged-and-lost.
  fault.SetDiskBudget(0);
  const auto shed = (*service)->SubmitAndWait(
      EditRequest::Edit(world.dataset.cases[4].edit, "bob"));
  result.Check(shed.ok() && shed->kind == EditResult::Kind::kRejected,
               "full-disk write shed with a typed rejection");

  const std::string degraded_metrics = HttpGet(port, "/metrics");
  result.Check(
      Scrape(degraded_metrics, "oneedit_enospc_rejects_total") >= 1,
      "ENOSPC shed visible on /metrics");
  result.Check(
      degraded_metrics.find("oneedit_service_health{state=\"healthy\"} 1") ==
          std::string::npos,
      "service left full health during the outage");
  // Reads must keep serving while degraded.
  result.Check((*service)->GetSnapshot().ok(), "reads serve while degraded");

  // Space frees; the half-open probe must heal the service, no restart.
  fault.SetDiskBudget(-1);
  result.Check(WaitFor([&] {
                 return (*service)->health() == ServiceHealth::kHealthy;
               }),
               "service healed after space freed");
  const auto retried = (*service)->SubmitAndWait(
      EditRequest::Edit(world.dataset.cases[4].edit, "bob"));
  result.Check(retried.ok() && retried->applied(),
               "shed edit retries successfully after heal");

  const std::string metrics = HttpGet(port, "/metrics");
  result.Check(Scrape(metrics, "oneedit_health_transitions_total") >= 2,
               "health ladder recorded the round trip");
  result.Check(
      metrics.find("oneedit_service_health{state=\"healthy\"} 1") !=
          std::string::npos,
      "service healthy after heal");

  // Zero acknowledged loss: the pre-outage edits never wavered.
  const Snapshot snapshot = *(*service)->GetSnapshot();
  for (size_t i = 0; i < 4; ++i) {
    const EditCase& c = world.dataset.cases[i];
    const auto decode = snapshot.Ask(c.edit.subject, c.edit.relation);
    result.Check(decode.ok() && decode->entity == c.edit.object,
                 "pre-outage edit decodes: " + c.edit.subject);
  }

  result.Detail("enospc_rejects",
                Scrape(metrics, "oneedit_enospc_rejects_total"));
  result.Detail("health_transitions",
                Scrape(metrics, "oneedit_health_transitions_total"));
  (*service)->Stop();
  return result;
}

// ------------------------------------------------------ 6. rule_update ----

ScenarioResult RuleUpdate() {
  ScenarioResult result;
  result.name = "rule_update";
  ResetProfiler();

  World world;
  EditServiceOptions options;
  options.expose_metrics = true;
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     GraceConfig(), options);
  if (!service.ok()) {
    result.Check(false, "service boots");
    return result;
  }
  const uint16_t port = (*service)->metrics_server()->port();

  // The "governor" relation's starting rule weight (it anchors the
  // first-lady rule's body).
  obs::CostProfiler::Global().SetAggregationIntervalMillis(0);
  size_t weight_before = 0;
  {
    (void)(*service)->SubmitAndWait(
        EditRequest::Edit(world.dataset.cases[0].edit, "alice"));
    for (const auto& entry :
         obs::CostProfiler::Global().ExpensiveRules(16)) {
      if (entry.name == "governor") weight_before = entry.weight;
    }
  }

  // Stream the remaining edits while a rule lands mid-stream under the
  // exclusive lock — a live config push during writes.
  size_t acked = 1;  // case 0 above
  bool rule_added = false;
  for (size_t i = 1; i < world.dataset.cases.size(); ++i) {
    if (i == world.dataset.cases.size() / 2) {
      const Status added =
          (*service)->WithExclusive([&](OneEditSystem& system) {
            auto rule = ParseHornRule(
                "shadow_first_lady(x, z) :- governor(x, y), spouse(y, z)",
                &system.kg().schema());
            if (!rule.ok()) return rule.status();
            system.kg().rules().AddRule(*rule);
            return Status::OK();
          });
      rule_added = added.ok();
    }
    const auto r = (*service)->SubmitAndWait(
        EditRequest::Edit(world.dataset.cases[i].edit, "alice"));
    if (r.ok() && r->applied()) ++acked;
  }
  result.Check(rule_added, "rule landed under the exclusive lock");
  result.Check(acked == world.dataset.cases.size(),
               "every edit acknowledged across the rule push");

  // The profiler's relation weights picked up the new rule: "governor" now
  // anchors one more rule body than before.
  size_t weight_after = 0;
  for (const auto& entry : obs::CostProfiler::Global().ExpensiveRules(16)) {
    if (entry.name == "governor") weight_after = entry.weight;
  }
  result.Check(weight_after == weight_before + 1,
               "profiler rule weight tracks the live rule push");

  obs::CostProfiler::Global().SetAggregationIntervalMillis(60000);
  obs::CostProfiler::Global().Aggregate();
  const std::string metrics = HttpGet(port, "/metrics");
  result.Check(
      !ScrapeLabeled(metrics, "oneedit_profiler_expensive_rule_cost").empty(),
      "expensive-rule gauges exported");
  result.Check(
      metrics.find("oneedit_service_health{state=\"healthy\"} 1") !=
          std::string::npos,
      "service healthy after the rule push");

  const Snapshot snapshot = *(*service)->GetSnapshot();
  for (const EditCase& c : world.dataset.cases) {
    const auto decode = snapshot.Ask(c.edit.subject, c.edit.relation);
    result.Check(decode.ok() && decode->entity == c.edit.object,
                 "acked edit decodes: " + c.edit.subject);
  }

  result.Detail("edits_acked", static_cast<double>(acked));
  result.Detail("governor_weight_before",
                static_cast<double>(weight_before));
  result.Detail("governor_weight_after", static_cast<double>(weight_after));
  (*service)->Stop();
  return result;
}

// ------------------------------------------------------------- driver ----

int RunScenarioBench() {
  std::cout << "Scenario matrix: seeded workload shapes vs live EditService "
               "invariants (seed " << kSeed << ")\n\n";

  std::vector<ScenarioResult> results;
  results.push_back(ZipfReadStorm());
  results.push_back(EditBurst());
  results.push_back(PoisonStorm());
  results.push_back(RollingFailover());
  results.push_back(DiskFull());
  results.push_back(RuleUpdate());
  ResetProfiler();

  bool all_pass = true;
  for (const ScenarioResult& r : results) {
    std::cout << (r.pass ? "PASS" : "FAIL") << "  " << r.name << "\n";
    for (const std::string& failure : r.failures) {
      std::cout << "      invariant violated: " << failure << "\n";
      all_pass = false;
    }
  }

  std::ofstream json("BENCH_scenarios.json");
  json << "{\"seed\":" << kSeed << ",\"scenarios\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    if (i > 0) json << ",";
    json << "{\"scenario\":\"" << r.name << "\",\"pass\":"
         << (r.pass ? "true" : "false") << ",\"failed_invariants\":[";
    for (size_t f = 0; f < r.failures.size(); ++f) {
      if (f > 0) json << ",";
      json << "\"" << r.failures[f] << "\"";
    }
    json << "]";
    if (!r.details.empty()) json << "," << r.details;
    json << "}";
  }
  json << "],\"pass\":" << (all_pass ? "true" : "false") << "}\n";
  json.close();
  std::cout << "\nwrote BENCH_scenarios.json ("
            << results.size() << " scenarios)\n";
  std::cout << "scenario matrix: " << (all_pass ? "PASS" : "FAIL") << "\n";
  return all_pass ? 0 : 1;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunScenarioBench(); }
