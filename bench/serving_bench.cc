// Serving-layer benchmark: coarse-lock ConcurrentOneEdit vs EditService's
// two read paths (legacy shared-lock vs epoch-based snapshots).
//
// Part 1 — idle read scalability: N reader threads hammer the read path for
// a fixed wall budget with no writer. The coarse lock serializes every
// query; the legacy shared lock lets readers run concurrently; the snapshot
// path pins a published ReadState with two atomic RMWs and never touches a
// lock.
//
// Part 2 — edit storm: the same reader pool runs while the writer applies
// continuous edit bursts. Under the legacy path every batch application
// blocks all readers (and the writer-preference gate makes them queue);
// under the snapshot path readers keep serving the previous epoch while the
// writer publishes the next one. The acceptance gates demand the snapshot
// arm's read p50/p99 improve on the locked arm's, that reader QPS does not
// collapse relative to idle, and — deterministically, on any host — that no
// snapshot read ever waits on the writer lock
// (serving_read_lock_wait_micros max stays 0).
//
// Part 3 — edit throughput and coalescing: a burst of disjoint-slot edits
// is applied sequentially under the coarse lock, then submitted to
// EditService, whose writer coalesces them into ApplyBatch calls.
//
// Part 4 — tracing overhead: the same edit burst with the span recorder
// globally off vs on; the acceptance gate demands the tracing tax on the
// serving write path stays within 5%.
//
// Results also land in BENCH_serving.json (cwd) for machine consumption.

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/concurrent.h"
#include "data/dataset.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serving/edit_service.h"
#include "util/timer.h"

namespace oneedit {
namespace {

using serving::EditService;
using serving::EditServiceOptions;
using serving::ReadPath;

constexpr int kReaderThreads = 8;
constexpr double kReadSeconds = 2.0;
constexpr double kStormSeconds = 2.0;

struct World {
  World()
      : dataset(BuildAmericanPoliticians(DatasetOptions{})),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
  }

  OneEditConfig Config() const {
    OneEditConfig config;
    config.method = EditingMethodKind::kGrace;
    config.interpreter.extraction_error_rate = 0.0;
    return config;
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
};

/// Runs `ask` from kReaderThreads threads for kReadSeconds; returns QPS.
template <typename AskFn>
double MeasureReadQps(const Dataset& dataset, AskFn&& ask) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      size_t i = t;
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const EditCase& edit_case =
            dataset.cases[i++ % dataset.cases.size()];
        ask(edit_case.edit.subject, edit_case.edit.relation);
        ++local;
      }
      reads.fetch_add(local);
    });
  }
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(kReadSeconds));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  return static_cast<double>(reads.load()) / timer.ElapsedSeconds();
}

/// One edit-storm A/B arm: kReaderThreads readers hammer the one-shot read
/// shim (which routes per `path`) while the main thread keeps the writer
/// saturated with edit bursts for kStormSeconds.
struct StormStats {
  double read_qps = 0.0;
  size_t edits_applied = 0;
  HistogramSnapshot read_micros;
  HistogramSnapshot lock_waits;
  uint64_t snapshots_published = 0;
};

StormStats MeasureEditStorm(ReadPath path) {
  StormStats out;
  World world;
  EditServiceOptions options;
  options.max_batch_size = 32;
  options.read_path = path;
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     world.Config(), options);
  if (!service.ok()) return out;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const EditCase& edit_case =
            world.dataset.cases[i++ % world.dataset.cases.size()];
        // The deprecated shim on purpose: it is the arm selector (legacy
        // locks vs snapshot pin) and the thing that records the lock-wait
        // histogram this bench asserts on.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
        (void)(*service)->Ask(edit_case.edit.subject,
                              edit_case.edit.relation);
#pragma GCC diagnostic pop
        ++local;
      }
      reads.fetch_add(local);
    });
  }

  WallTimer timer;
  size_t round = 0;
  while (timer.ElapsedSeconds() < kStormSeconds) {
    std::vector<std::future<StatusOr<EditResult>>> futures;
    for (const EditCase& edit_case : world.dataset.cases) {
      NamedTriple triple = edit_case.edit;
      if (round % 2 == 1) triple.object = edit_case.old_object;
      futures.push_back(
          (*service)->Submit(EditRequest::Edit(triple, "storm")));
    }
    for (auto& future : futures) {
      const auto result = future.get();
      if (result.ok() && result->applied()) ++out.edits_applied;
    }
    ++round;
  }
  stop.store(true);
  const double seconds = timer.ElapsedSeconds();
  for (std::thread& reader : readers) reader.join();
  (*service)->Drain();

  out.read_qps = static_cast<double>(reads.load()) / seconds;
  const Statistics& stats = (*service)->statistics();
  out.read_micros = stats.GetHistogram(Histogram::kServingReadMicros);
  out.lock_waits =
      stats.GetHistogram(Histogram::kServingReadLockWaitMicros);
  out.snapshots_published = stats.Get(Ticker::kSnapshotsPublished);
  return out;
}

/// One edit-throughput run through EditService (the Part 3 workload) with
/// the global span recorder forced to `tracing`; returns edits/second.
double MeasureEditThroughput(bool tracing, size_t* applied_out) {
  obs::TraceRecorder::Global().SetEnabled(tracing);
  World world;
  EditServiceOptions options;
  options.max_batch_size = 32;
  options.tracing = tracing;
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     world.Config(), options);
  if (!service.ok()) return 0.0;
  size_t applied = 0;
  const size_t kRounds = 3;
  WallTimer timer;
  std::vector<std::future<StatusOr<EditResult>>> futures;
  for (size_t round = 0; round < kRounds; ++round) {
    for (const EditCase& edit_case : world.dataset.cases) {
      NamedTriple triple = edit_case.edit;
      if (round % 2 == 1) triple.object = edit_case.old_object;
      futures.push_back(
          (*service)->Submit(EditRequest::Edit(triple, "bench")));
    }
  }
  for (auto& future : futures) {
    const auto result = future.get();
    if (result.ok() && result->applied()) ++applied;
  }
  (*service)->Drain();
  const double seconds = timer.ElapsedSeconds();
  if (applied_out != nullptr) *applied_out = applied;
  return seconds > 0.0 ? static_cast<double>(applied) / seconds : 0.0;
}

/// Profiler-overhead A/B: snapshot-path read QPS with the global cost
/// profiler toggled off/on against ONE live service. The profiler's hook
/// sits directly in Snapshot::Ask (two clock reads + two lock-free table
/// ticks per decode), so the read path is where its tax shows first.
/// Both arms share the service and World: re-creating the world per arm
/// shifts QPS far more than the hook does, and a fixed off-then-on order
/// turns that drift into a phantom overhead. The overhead is therefore
/// computed per PAIR of temporally adjacent windows (drift within a pair
/// is small), pairs alternate order (off/on, on/off, ...) so residual
/// slope bias cancels, and the reported overhead is the MEDIAN pair ratio
/// — a single noisy window cannot move it. The reported QPS per arm is
/// each arm's best window.
void MeasureProfilerOverhead(double* unprofiled_qps, double* profiled_qps,
                             double* overhead_pct) {
  World world;
  EditServiceOptions options;
  auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                     world.Config(), options);
  if (!service.ok()) return;
  const auto window = [&](bool profiling) {
    obs::CostProfiler::Global().SetEnabled(profiling);
    return MeasureReadQps(
        world.dataset, [&](const std::string& s, const std::string& r) {
          (void)(*service)->GetSnapshot()->Ask(s, r);
        });
  };
  std::vector<double> pair_overheads;
  for (int pair = 0; pair < 5; ++pair) {
    const bool off_first = pair % 2 == 0;
    const double first = window(/*profiling=*/!off_first);
    const double second = window(/*profiling=*/off_first);
    const double off = off_first ? first : second;
    const double on = off_first ? second : first;
    if (off > 0.0 && on > 0.0) {
      pair_overheads.push_back((off - on) / off * 100.0);
      *unprofiled_qps = std::max(*unprofiled_qps, off);
      *profiled_qps = std::max(*profiled_qps, on);
    }
  }
  (*service)->Stop();
  if (pair_overheads.empty()) return;
  std::cout << "Profiler pair overheads (%):  ";
  for (const double pct : pair_overheads) std::cout << " " << pct;
  std::cout << "\n";
  std::sort(pair_overheads.begin(), pair_overheads.end());
  *overhead_pct = pair_overheads[pair_overheads.size() / 2];
}

int RunServingBench() {
  std::cout << "Serving bench: coarse lock vs shared-lock reads vs "
               "epoch-based snapshots\n";
  std::cout << "(" << kReaderThreads << " reader threads, GRACE, "
            << "American-politicians world)\n\n";

  // ---- Part 1: idle read QPS, three arms ----
  double coarse_qps = 0.0;
  {
    World world;
    auto system =
        OneEditSystem::Create(&world.dataset.kg, world.model.get(),
                              world.Config());
    if (!system.ok()) {
      std::cerr << system.status().ToString() << "\n";
      return 1;
    }
    ConcurrentOneEdit concurrent(std::move(system).value());
    coarse_qps = MeasureReadQps(
        world.dataset, [&](const std::string& s, const std::string& r) {
          (void)concurrent.Ask(s, r);
        });
  }
  double locked_qps = 0.0;
  {
    World world;
    EditServiceOptions options;
    options.read_path = ReadPath::kLockedLegacy;
    auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                       world.Config(), options);
    if (!service.ok()) {
      std::cerr << service.status().ToString() << "\n";
      return 1;
    }
    locked_qps = MeasureReadQps(
        world.dataset, [&](const std::string& s, const std::string& r) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
          (void)(*service)->Ask(s, r);
#pragma GCC diagnostic pop
        });
  }
  double snapshot_qps = 0.0;
  {
    World world;
    auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                       world.Config());
    if (!service.ok()) {
      std::cerr << service.status().ToString() << "\n";
      return 1;
    }
    snapshot_qps = MeasureReadQps(
        world.dataset, [&](const std::string& s, const std::string& r) {
          (void)(*service)->GetSnapshot()->Ask(s, r);
        });
  }
  std::cout << "Idle read QPS, coarse lock:   "
            << static_cast<uint64_t>(coarse_qps) << "\n";
  std::cout << "Idle read QPS, shared lock:   "
            << static_cast<uint64_t>(locked_qps) << "\n";
  std::cout << "Idle read QPS, snapshots:     "
            << static_cast<uint64_t>(snapshot_qps) << "\n";
  std::cout << "Snapshot speedup vs coarse:   " << snapshot_qps / coarse_qps
            << "x\n\n";

  // ---- Part 2: reads under an edit storm, locked vs snapshot ----
  const StormStats locked_storm = MeasureEditStorm(ReadPath::kLockedLegacy);
  const StormStats snapshot_storm = MeasureEditStorm(ReadPath::kSnapshot);
  std::cout << "Storm read QPS, shared lock:  "
            << static_cast<uint64_t>(locked_storm.read_qps) << " ("
            << locked_storm.edits_applied << " edits landed)\n";
  std::cout << "Storm read QPS, snapshots:    "
            << static_cast<uint64_t>(snapshot_storm.read_qps) << " ("
            << snapshot_storm.edits_applied << " edits landed, "
            << snapshot_storm.snapshots_published << " states published)\n";
  std::cout << "Storm read us, shared lock:   p50 "
            << locked_storm.read_micros.P50() << ", p99 "
            << locked_storm.read_micros.P99() << ", lock-wait max "
            << locked_storm.lock_waits.max << "\n";
  std::cout << "Storm read us, snapshots:     p50 "
            << snapshot_storm.read_micros.P50() << ", p99 "
            << snapshot_storm.read_micros.P99() << ", lock-wait max "
            << snapshot_storm.lock_waits.max << "\n\n";

  // ---- Part 3: edit throughput + coalescing ----
  const size_t kEditRounds = 3;
  double coarse_edit_seconds = 0.0;
  size_t coarse_edits = 0;
  {
    World world;
    auto system =
        OneEditSystem::Create(&world.dataset.kg, world.model.get(),
                              world.Config());
    if (!system.ok()) return 1;
    ConcurrentOneEdit concurrent(std::move(system).value());
    WallTimer timer;
    for (size_t round = 0; round < kEditRounds; ++round) {
      for (const EditCase& edit_case : world.dataset.cases) {
        NamedTriple triple = edit_case.edit;
        if (round % 2 == 1) triple.object = edit_case.old_object;
        if (concurrent.EditTriple(triple, "bench").ok()) ++coarse_edits;
      }
    }
    coarse_edit_seconds = timer.ElapsedSeconds();
  }
  double serving_edit_seconds = 0.0;
  size_t serving_edits = 0;
  HistogramSnapshot batch_sizes;
  HistogramSnapshot queue_depths;
  HistogramSnapshot latencies;
  HistogramSnapshot queue_waits;
  {
    World world;
    EditServiceOptions options;
    options.max_batch_size = 32;
    auto service = EditService::Create(&world.dataset.kg, world.model.get(),
                                       world.Config(), options);
    if (!service.ok()) return 1;
    WallTimer timer;
    std::vector<std::future<StatusOr<EditResult>>> futures;
    for (size_t round = 0; round < kEditRounds; ++round) {
      for (const EditCase& edit_case : world.dataset.cases) {
        NamedTriple triple = edit_case.edit;
        if (round % 2 == 1) triple.object = edit_case.old_object;
        futures.push_back(
            (*service)->Submit(EditRequest::Edit(triple, "bench")));
      }
    }
    for (auto& future : futures) {
      const auto result = future.get();
      if (result.ok() && result->applied()) ++serving_edits;
    }
    (*service)->Drain();
    serving_edit_seconds = timer.ElapsedSeconds();
    const Statistics& stats = (*service)->statistics();
    batch_sizes = stats.GetHistogram(Histogram::kServingBatchSize);
    queue_depths = stats.GetHistogram(Histogram::kServingQueueDepth);
    latencies = stats.GetHistogram(Histogram::kServingLatencyMicros);
    queue_waits = stats.GetHistogram(Histogram::kServingQueueWaitMicros);
  }
  std::cout << "Edit throughput, coarse lock:  "
            << coarse_edits / coarse_edit_seconds << " edits/s ("
            << coarse_edits << " edits)\n";
  std::cout << "Edit throughput, EditService:  "
            << serving_edits / serving_edit_seconds << " edits/s ("
            << serving_edits << " applied)\n";
  std::cout << "Writer batches:                " << batch_sizes.count
            << " (avg size " << batch_sizes.Average() << ", max "
            << batch_sizes.max << ")\n";
  std::cout << "Queue depth at admission:      avg " << queue_depths.Average()
            << ", max " << queue_depths.max << "\n";
  std::cout << "Submit->done latency:          avg "
            << latencies.Average() / 1000.0 << " ms, p50 "
            << static_cast<double>(latencies.P50()) / 1000.0 << " ms, p95 "
            << static_cast<double>(latencies.P95()) / 1000.0 << " ms, p99 "
            << static_cast<double>(latencies.P99()) / 1000.0 << " ms, max "
            << static_cast<double>(latencies.max) / 1000.0 << " ms\n";
  std::cout << "Queue wait:                    p50 "
            << static_cast<double>(queue_waits.P50()) / 1000.0 << " ms, p95 "
            << static_cast<double>(queue_waits.P95()) / 1000.0 << " ms, p99 "
            << static_cast<double>(queue_waits.P99()) / 1000.0 << " ms ("
            << queue_waits.count << " waits)\n";

  // ---- Part 4: tracing overhead on the write path ----
  // Best-of-2 per arm: the workload is short, so a single run's scheduler
  // noise on a small host could dwarf the effect being measured.
  size_t traced_edits = 0;
  const double untraced_eps = std::max(MeasureEditThroughput(false, nullptr),
                                       MeasureEditThroughput(false, nullptr));
  const double traced_eps =
      std::max(MeasureEditThroughput(true, &traced_edits),
               MeasureEditThroughput(true, &traced_edits));
  obs::TraceRecorder::Global().SetEnabled(false);
  const double overhead_pct =
      untraced_eps > 0.0 ? (untraced_eps - traced_eps) / untraced_eps * 100.0
                         : 0.0;
  std::cout << "\nEdit throughput, tracing off:  " << untraced_eps
            << " edits/s\n";
  std::cout << "Edit throughput, tracing on:   " << traced_eps
            << " edits/s\n";
  std::cout << "Tracing overhead:              " << overhead_pct << " %\n";

  // ---- Part 5: cost-profiler overhead on the read path ----
  double unprofiled_qps = 0.0;
  double profiled_qps = 0.0;
  double profiler_overhead_pct = 0.0;
  MeasureProfilerOverhead(&unprofiled_qps, &profiled_qps,
                          &profiler_overhead_pct);
  obs::CostProfiler::Global().SetEnabled(false);
  std::cout << "\nRead QPS, profiler off:        "
            << static_cast<uint64_t>(unprofiled_qps) << "\n";
  std::cout << "Read QPS, profiler on:         "
            << static_cast<uint64_t>(profiled_qps) << "\n";
  std::cout << "Profiler overhead:             " << profiler_overhead_pct
            << " % (median of paired windows)\n";

  // Reader scaling needs real cores: on a single-CPU host the 8 reader
  // threads time-slice one core, so even a perfect lock-free read path
  // cannot beat the serialized baseline. Report, but only enforce the
  // scaling/percentile targets where the hardware can express them. The
  // lock-wait gate is scheduling-independent and always enforced.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool can_scale = cores >= 8;
  const bool qps_ok = snapshot_qps >= 4.0 * coarse_qps;
  const bool storm_tail_ok =
      snapshot_storm.read_micros.P50() <= locked_storm.read_micros.P50() &&
      snapshot_storm.read_micros.P99() <= locked_storm.read_micros.P99();
  const bool storm_qps_ok =
      snapshot_storm.read_qps >= 0.5 * snapshot_qps &&
      snapshot_storm.read_qps >= locked_storm.read_qps;
  const bool no_lock_wait = snapshot_storm.lock_waits.count > 0 &&
                            snapshot_storm.lock_waits.max == 0;
  const bool coalesced = batch_sizes.max > 1;
  const bool tracing_ok = overhead_pct <= 5.0;
  const bool profiler_ok = profiler_overhead_pct <= 2.0;
  std::cout << "\nacceptance: snapshot read speedup >= 4x: ";
  if (can_scale) {
    std::cout << (qps_ok ? "PASS" : "FAIL");
  } else {
    std::cout << "SKIPPED (host has " << cores
              << " core(s); needs >= 8 for reader scaling)";
  }
  std::cout << ", storm p50/p99 improve: ";
  if (can_scale) {
    std::cout << (storm_tail_ok ? "PASS" : "FAIL");
  } else {
    std::cout << "SKIPPED";
  }
  std::cout << ", storm QPS holds up: ";
  if (can_scale) {
    std::cout << (storm_qps_ok ? "PASS" : "FAIL");
  } else {
    std::cout << "SKIPPED";
  }
  std::cout << ", no reader blocks on the writer lock: "
            << (no_lock_wait ? "PASS" : "FAIL");
  std::cout << ", coalesced batches > 1: " << (coalesced ? "PASS" : "FAIL");
  std::cout << ", tracing overhead <= 5%: " << (tracing_ok ? "PASS" : "FAIL");
  std::cout << ", profiler overhead <= 2%: "
            << (profiler_ok ? "PASS" : "FAIL") << "\n";

  // Machine-readable twin of the report above.
  std::ofstream json("BENCH_serving.json");
  json << "{\"read_qps_coarse\":" << coarse_qps
       << ",\"read_qps_locked\":" << locked_qps
       << ",\"read_qps_snapshot\":" << snapshot_qps
       << ",\"read_speedup\":" << snapshot_qps / coarse_qps
       << ",\"storm\":{"
       << "\"locked\":{\"read_qps\":" << locked_storm.read_qps
       << ",\"read_us_p50\":" << locked_storm.read_micros.P50()
       << ",\"read_us_p99\":" << locked_storm.read_micros.P99()
       << ",\"lock_wait_us_max\":" << locked_storm.lock_waits.max
       << ",\"edits_applied\":" << locked_storm.edits_applied << "}"
       << ",\"snapshot\":{\"read_qps\":" << snapshot_storm.read_qps
       << ",\"read_us_p50\":" << snapshot_storm.read_micros.P50()
       << ",\"read_us_p99\":" << snapshot_storm.read_micros.P99()
       << ",\"lock_wait_us_max\":" << snapshot_storm.lock_waits.max
       << ",\"edits_applied\":" << snapshot_storm.edits_applied
       << ",\"states_published\":" << snapshot_storm.snapshots_published
       << "}}"
       << ",\"edit_eps_coarse\":" << coarse_edits / coarse_edit_seconds
       << ",\"edit_eps_serving\":" << serving_edits / serving_edit_seconds
       << ",\"batches\":" << batch_sizes.count
       << ",\"batch_size_avg\":" << batch_sizes.Average()
       << ",\"batch_size_max\":" << batch_sizes.max
       << ",\"latency_us\":{\"p50\":" << latencies.P50()
       << ",\"p95\":" << latencies.P95() << ",\"p99\":" << latencies.P99()
       << ",\"max\":" << latencies.max << "}"
       << ",\"queue_wait_us\":{\"p50\":" << queue_waits.P50()
       << ",\"p95\":" << queue_waits.P95()
       << ",\"p99\":" << queue_waits.P99() << "}"
       << ",\"edit_eps_tracing_off\":" << untraced_eps
       << ",\"edit_eps_tracing_on\":" << traced_eps
       << ",\"tracing_overhead_pct\":" << overhead_pct
       << ",\"read_qps_profiler_off\":" << unprofiled_qps
       << ",\"read_qps_profiler_on\":" << profiled_qps
       << ",\"profiler_overhead_pct\":" << profiler_overhead_pct
       << ",\"cores\":" << cores << "}\n";
  json.close();
  std::cout << "wrote BENCH_serving.json\n";

  const bool scaling_gates_ok =
      !can_scale || (qps_ok && storm_tail_ok && storm_qps_ok);
  const bool pass = scaling_gates_ok && no_lock_wait && coalesced &&
                    tracing_ok && profiler_ok;
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunServingBench(); }
