// General-purpose evaluation CLI: run any (method × dataset × model ×
// protocol) cell of the experiment space and print (or CSV-export) the
// metrics — the tool behind every table in EXPERIMENTS.md when you want a
// single cell instead of a whole table.
//
// Usage:
//   eval_cli --method "OneEdit (MEMIT)" [--dataset politicians|academic|companies]
//                [--model gptj|qwen2|gpt2xl] [--users N] [--cases N] [--n N]
//                [--no-rules] [--no-aliases] [--no-cache] [--lifelong]
//                [--csv path]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "data/dataset.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

int Usage() {
  std::cerr
      << "usage: eval_cli --method NAME [--dataset politicians|academic|"
         "companies]\n"
         "                    [--model gptj|qwen2|gpt2xl] [--users N] "
         "[--cases N] [--n N]\n"
         "                    [--no-rules] [--no-aliases] [--no-cache] "
         "[--lifelong] [--csv path]\n";
  return 2;
}

int RunCli(int argc, char** argv) {
  std::string method = "OneEdit (MEMIT)";  // default demo cell
  std::string dataset_name = "politicians";
  std::string model_name = "gptj";
  std::string csv_path;
  RunOptions options;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--method") == 0) {
      const char* value = next("--method");
      if (value == nullptr) return Usage();
      method = value;
    } else if (std::strcmp(argv[i], "--dataset") == 0) {
      const char* value = next("--dataset");
      if (value == nullptr) return Usage();
      dataset_name = value;
    } else if (std::strcmp(argv[i], "--model") == 0) {
      const char* value = next("--model");
      if (value == nullptr) return Usage();
      model_name = value;
    } else if (std::strcmp(argv[i], "--users") == 0) {
      const char* value = next("--users");
      if (value == nullptr) return Usage();
      options.users = static_cast<size_t>(std::atoll(value));
    } else if (std::strcmp(argv[i], "--cases") == 0) {
      const char* value = next("--cases");
      if (value == nullptr) return Usage();
      options.max_cases = static_cast<size_t>(std::atoll(value));
    } else if (std::strcmp(argv[i], "--n") == 0) {
      const char* value = next("--n");
      if (value == nullptr) return Usage();
      options.controller.num_generation_triples =
          static_cast<size_t>(std::atoll(value));
    } else if (std::strcmp(argv[i], "--no-rules") == 0) {
      options.controller.use_logical_rules = false;
    } else if (std::strcmp(argv[i], "--no-aliases") == 0) {
      options.controller.augment_aliases = false;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(argv[i], "--lifelong") == 0) {
      options.lifelong = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      const char* value = next("--csv");
      if (value == nullptr) return Usage();
      csv_path = value;
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return Usage();
    }
  }
  Dataset (*factory)(const DatasetOptions&) = &BuildAmericanPoliticians;
  if (dataset_name == "academic") {
    factory = &BuildAcademicFigures;
  } else if (dataset_name == "companies") {
    factory = &BuildTechCompanies;
  } else if (dataset_name != "politicians") {
    std::cerr << "unknown dataset: " << dataset_name << "\n";
    return Usage();
  }

  ModelConfig model = GptJSimConfig();
  if (model_name == "qwen2") {
    model = Qwen2SimConfig();
  } else if (model_name == "gpt2xl") {
    model = Gpt2XlSimConfig();
  } else if (model_name != "gptj") {
    std::cerr << "unknown model: " << model_name << "\n";
    return Usage();
  }

  const auto spec = ParseMethodSpec(method);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }

  Harness harness([factory] { return factory(DatasetOptions{}); }, model);
  const auto result = harness.Run(*spec, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"Method", "Dataset", "Model", "Cases", "Reliability",
                      "Locality", "Reverse", "One-Hop", "Sub-Replace",
                      "Average"});
  const MetricScores& s = result->scores;
  table.AddRow({result->method, result->dataset, result->model,
                std::to_string(result->cases), FormatDouble(s.reliability, 3),
                FormatDouble(s.locality, 3), FormatDouble(s.reverse, 3),
                FormatDouble(s.one_hop, 3), FormatDouble(s.sub_replace, 3),
                FormatDouble(s.Average(), 3)});
  table.Print(std::cout);
  std::cout << "edits: " << result->edits
            << ", cache hits: " << result->cache_hits
            << ", measured s/edit: "
            << FormatDouble(result->measured_edit_seconds, 5)
            << ", modeled s/edit: "
            << FormatDouble(result->modeled_edit_seconds, 1)
            << ", modeled VRAM: " << FormatDouble(result->modeled_vram_gb, 0)
            << " GB\n";

  if (!csv_path.empty()) {
    const Status status = WriteResultsCsv({*result}, csv_path);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace oneedit

int main(int argc, char** argv) { return oneedit::RunCli(argc, argv); }
