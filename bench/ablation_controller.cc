// Ablation of the Controller/Editor design decisions DESIGN.md calls out:
// alias restatements (Sub-Replace generalization), logical-rule expansion
// (One-Hop), and the edit cache (multi-user locality via exact rollback).
// Each row disables exactly one mechanism of OneEdit (MEMIT) on the
// GPT-J-6B simulated model, American-politicians dataset.

#include <iostream>

#include "data/dataset.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

int RunAblation() {
  Harness harness([] { return BuildAmericanPoliticians(DatasetOptions{}); },
                  GptJSimConfig());
  const auto spec = ParseMethodSpec("OneEdit (MEMIT)");

  struct Variant {
    const char* label;
    bool aliases;
    bool rules;
    bool cache;
    size_t users;
  };
  const Variant variants[] = {
      {"full system (users=1)", true, true, true, 1},
      {"- alias restatements", false, true, true, 1},
      {"- logical rules", true, false, true, 1},
      {"full system (users=3)", true, true, true, 3},
      {"- edit cache (users=3)", true, true, false, 3},
  };

  TablePrinter table({"Variant", "Reliability", "Locality", "Reverse",
                      "One-Hop", "Sub-Replace", "Average"});
  for (const Variant& variant : variants) {
    RunOptions options;
    options.users = variant.users;
    options.use_cache = variant.cache;
    options.controller.num_generation_triples = 8;
    options.controller.augment_aliases = variant.aliases;
    options.controller.use_logical_rules = variant.rules;
    const auto result = harness.Run(*spec, options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const MetricScores& s = result->scores;
    table.AddRow({variant.label, FormatDouble(s.reliability, 3),
                  FormatDouble(s.locality, 3), FormatDouble(s.reverse, 3),
                  FormatDouble(s.one_hop, 3), FormatDouble(s.sub_replace, 3),
                  FormatDouble(s.Average(), 3)});
  }

  std::cout << "Controller/Editor ablation — OneEdit (MEMIT), GPT-J-6B(sim), "
               "American politicians\n";
  table.Print(std::cout);
  std::cout << "\nExpected effects: no aliases -> Sub-Replace drops toward "
               "the bare MEMIT level;\nno rules -> One-Hop collapses "
               "(Figure 4); no cache at users=3 -> rollbacks become\n"
               "impossible, edits pile up, locality and reliability "
               "degrade.\n";
  return 0;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunAblation(); }
