// Reproduces Figure 5: the coverage-conflict case study (§4.8.1).
//
// 2020: the U.S. president changes from Trump to Biden — OneEdit rolls back
// nothing in the model (the Trump fact was pretrained) but replaces the KG
// slot and edits the model. 2024: Trump wins again — the Controller detects
// the coverage conflict, the Editor subtracts Biden's cached edit
// parameters, and Trump's knowledge is re-installed. A final flip back to
// Biden is served entirely from the edit cache (the Eq. 8 fast path).

#include <iostream>

#include "core/oneedit.h"
#include "model/model_config.h"
#include "util/rng.h"

namespace oneedit {
namespace {

Vocab CaseVocab() {
  Vocab vocab;
  vocab.entities = {"the USA", "Donald Trump", "Joe Biden", "Melania Trump",
                    "Jill Biden", "France"};
  vocab.relations = {{"president", "presides_over"},
                     {"wife", "husband"},
                     {"first_lady", ""}};
  return vocab;
}

void ShowBeliefs(const OneEditSystem& system, LanguageModel& model) {
  const auto ask = [&model](const char* subject, const char* relation) {
    QueryOptions options;
    options.probe_seed = Rng::HashString(std::string(subject) + relation);
    const Decode decode = model.Query(subject, relation, options);
    std::cout << "    " << relation << "(" << subject << ") = "
              << decode.entity << "\n";
  };
  (void)system;
  ask("the USA", "president");
  ask("the USA", "first_lady");
}

int RunFig5() {
  KnowledgeGraph kg;
  const RelationId president = kg.schema().Define("president");
  const RelationId presides = kg.schema().Define("presides_over");
  const RelationId wife = kg.schema().Define("wife");
  const RelationId husband = kg.schema().Define("husband");
  const RelationId first_lady = kg.schema().Define("first_lady");
  (void)first_lady;
  (void)kg.schema().SetInverse(president, presides);
  (void)kg.schema().SetInverse(wife, husband);
  kg.rules().AddRule(HornRule{"first-lady", president, wife, first_lady});

  const auto add = [&kg](const char* s, const char* r, const char* o) {
    const auto relation = kg.schema().Lookup(r);
    (void)kg.Add(Triple{kg.InternEntity(s), *relation, kg.InternEntity(o)});
  };
  add("the USA", "president", "Donald Trump");
  add("Donald Trump", "presides_over", "the USA");
  add("Donald Trump", "wife", "Melania Trump");
  add("Melania Trump", "husband", "Donald Trump");
  add("Joe Biden", "wife", "Jill Biden");
  add("Jill Biden", "husband", "Joe Biden");
  add("the USA", "first_lady", "Melania Trump");

  ModelConfig config = Gpt2XlSimConfig();
  config.junk_fraction = 0.2;
  LanguageModel model(config, CaseVocab());
  model.Pretrain({{"the USA", "president", "Donald Trump"},
                  {"Donald Trump", "presides_over", "the USA"},
                  {"Donald Trump", "wife", "Melania Trump"},
                  {"Melania Trump", "husband", "Donald Trump"},
                  {"Joe Biden", "wife", "Jill Biden"},
                  {"Jill Biden", "husband", "Joe Biden"},
                  {"the USA", "first_lady", "Melania Trump"}});

  OneEditConfig oneedit_config;
  oneedit_config.method = EditingMethodKind::kMemit;
  oneedit_config.controller.num_generation_triples = 4;
  auto system = OneEditSystem::Create(&kg, &model, oneedit_config);
  if (!system.ok()) {
    std::cerr << system.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Figure 5: coverage-conflict case study\n\n";
  std::cout << "[pretrained model]\n";
  ShowBeliefs(**system, model);

  const auto do_edit = [&](const char* label, const char* object) {
    std::cout << "\n[" << label << "] edit: (the USA, president, " << object
              << ")\n";
    const auto report = (*system)->EditTriple(
        NamedTriple{"the USA", "president", object}, "user");
    if (!report.ok()) {
      std::cout << "    edit failed: " << report.status().ToString() << "\n";
      return;
    }
    std::cout << "    rollbacks requested: " << report->plan().rollbacks.size()
              << " (applied " << report->outcome().rollbacks_applied
              << ", pretrained/skipped " << report->outcome().rollbacks_skipped
              << ")\n";
    std::cout << "    edits applied: " << report->outcome().edits_applied
              << ", augmentations: " << report->outcome().augmentations_applied
              << ", cache hits: " << report->outcome().cache_hits << "\n";
    std::cout << "    cached edit parameters now held: "
              << (*system)->editor().cache().size() << " entries, "
              << (*system)->editor().cache().ApproxBytes() / 1024
              << " KiB\n";
    ShowBeliefs(**system, model);
  };

  do_edit("2020 election: user A", "Joe Biden");
  do_edit("2024 election: user B (Trump returns)", "Donald Trump");
  do_edit("hypothetical flip: cached Biden edit re-applied", "Joe Biden");

  std::cout << "\nWithout OneEdit, each flip would pile a fresh edit onto the "
               "same slot, leaving residual\nknowledge (Li et al. 2024); with "
               "the rollback + cache, each state change is one exact\n"
               "parameter addition/subtraction.\n";
  return 0;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunFig5(); }
