// Microbenchmarks for the knowledge-graph substrate: triple-store mutation
// and lookup, BFS neighborhood queries, versioned rollback, and WAL append.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "kg/graph_query.h"
#include "kg/knowledge_graph.h"
#include "kg/triple_store.h"
#include "kg/wal.h"
#include "util/rng.h"

namespace oneedit {
namespace {

TripleStore MakeStore(size_t n) {
  TripleStore store;
  Rng rng(42);
  for (size_t i = 0; i < n; ++i) {
    store.Add(Triple{static_cast<EntityId>(rng.NextBelow(n / 4 + 1)),
                     static_cast<RelationId>(rng.NextBelow(16)),
                     static_cast<EntityId>(rng.NextBelow(n / 4 + 1))});
  }
  return store;
}

void BM_TripleStoreAdd(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TripleStore store;
    state.ResumeTiming();
    for (uint32_t i = 0; i < state.range(0); ++i) {
      store.Add(Triple{i % 997, i % 13, i % 1009});
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TripleStoreAdd)->Arg(1000)->Arg(10000);

void BM_TripleStoreContains(benchmark::State& state) {
  const TripleStore store = MakeStore(10000);
  Rng rng(7);
  for (auto _ : state) {
    const Triple probe{static_cast<EntityId>(rng.NextBelow(2501)),
                       static_cast<RelationId>(rng.NextBelow(16)),
                       static_cast<EntityId>(rng.NextBelow(2501))};
    benchmark::DoNotOptimize(store.Contains(probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleStoreContains);

void BM_TripleStoreObjects(benchmark::State& state) {
  const TripleStore store = MakeStore(10000);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Objects(static_cast<EntityId>(rng.NextBelow(2501)),
                      static_cast<RelationId>(rng.NextBelow(16))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleStoreObjects);

void BM_NeighborhoodTriples(benchmark::State& state) {
  const TripleStore store = MakeStore(10000);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NeighborhoodTriples(
        store, static_cast<EntityId>(rng.NextBelow(2501)),
        static_cast<size_t>(state.range(0)), 2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborhoodTriples)->Arg(8)->Arg(32);

void BM_KnowledgeGraphUpsertRollback(benchmark::State& state) {
  KnowledgeGraph kg;
  const RelationId r = kg.schema().Define("rel");
  const EntityId a = kg.InternEntity("a");
  const EntityId b = kg.InternEntity("b");
  const EntityId c = kg.InternEntity("c");
  (void)kg.Add(Triple{a, r, b});
  for (auto _ : state) {
    const uint64_t checkpoint = kg.version();
    benchmark::DoNotOptimize(kg.Upsert(a, r, c));
    benchmark::DoNotOptimize(kg.RollbackTo(checkpoint));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnowledgeGraphUpsertRollback);

void BM_WalAppend(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "oneedit_bench_wal.log")
          .string();
  std::remove(path.c_str());
  WriteAheadLog wal;
  if (!wal.Open(path).ok()) {
    state.SkipWithError("cannot open WAL");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wal.Append(WalOp::kAdd, "subject", "relation", "object"));
  }
  wal.Close();
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend);

}  // namespace
}  // namespace oneedit

BENCHMARK_MAIN();
