// Microbenchmarks for the editing methods: per-edit latency of FT / ROME /
// MEMIT / GRACE on the GPT-J-6B simulated model, the edit-cache fast paths
// (rollback / re-apply), and model query latency. These are the raw
// operation costs behind Table 3's measured section.

#include <benchmark/benchmark.h>

#include "data/dataset.h"
#include "editing/editor.h"
#include "model/language_model.h"
#include "model/model_config.h"

namespace oneedit {
namespace {

struct Fixture {
  Fixture() : dataset(BuildAmericanPoliticians(DatasetOptions{})),
              model(GptJSimConfig(), dataset.vocab) {
    model.Pretrain(dataset.pretrain_facts);
    pristine = model.SnapshotWeights();
  }
  Dataset dataset;
  LanguageModel model;
  WeightSnapshot pristine;
};

Fixture& SharedFixture() {
  static Fixture* const fixture = new Fixture();
  return *fixture;
}

void BM_ApplyEdit(benchmark::State& state, const std::string& method_name) {
  Fixture& fx = SharedFixture();
  auto method = MakeEditingMethod(method_name);
  const NamedTriple edit = fx.dataset.cases.front().edit;
  size_t count = 0;
  for (auto _ : state) {
    auto delta = method.value()->ApplyEdit(&fx.model, edit);
    benchmark::DoNotOptimize(delta);
    if (++count % 16 == 0) {
      state.PauseTiming();
      fx.model.RestoreWeights(fx.pristine);
      method.value()->Reset(&fx.model);
      state.ResumeTiming();
    }
  }
  fx.model.RestoreWeights(fx.pristine);
  method.value()->Reset(&fx.model);
  state.SetItemsProcessed(state.iterations());
}
void BM_ApplyEdit_FT(benchmark::State& s) { BM_ApplyEdit(s, "FT"); }
void BM_ApplyEdit_ROME(benchmark::State& s) { BM_ApplyEdit(s, "ROME"); }
void BM_ApplyEdit_MEMIT(benchmark::State& s) { BM_ApplyEdit(s, "MEMIT"); }
void BM_ApplyEdit_GRACE(benchmark::State& s) { BM_ApplyEdit(s, "GRACE"); }
BENCHMARK(BM_ApplyEdit_FT);
BENCHMARK(BM_ApplyEdit_ROME);
BENCHMARK(BM_ApplyEdit_MEMIT);
BENCHMARK(BM_ApplyEdit_GRACE);

void BM_CachedRollbackReapply(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  auto method = MakeEditingMethod("MEMIT");
  const NamedTriple edit = fx.dataset.cases.front().edit;
  auto delta = method.value()->ApplyEdit(&fx.model, edit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.value()->Rollback(&fx.model, *delta));
    benchmark::DoNotOptimize(method.value()->Reapply(&fx.model, *delta));
  }
  (void)method.value()->Rollback(&fx.model, *delta);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CachedRollbackReapply);

void BM_ModelQuery(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  const EditCase& edit_case = fx.dataset.cases.front();
  QueryOptions options;
  options.key_noise = fx.model.config().reliability_noise;
  uint64_t seed = 0;
  for (auto _ : state) {
    options.probe_seed = ++seed;
    benchmark::DoNotOptimize(fx.model.Query(
        edit_case.edit.subject, edit_case.edit.relation, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelQuery);

void BM_ModelQueryComposed(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  const HopProbe* probe = nullptr;
  for (const EditCase& edit_case : fx.dataset.cases) {
    if (!edit_case.one_hop.empty()) {
      probe = &edit_case.one_hop.front();
      break;
    }
  }
  if (probe == nullptr) {
    state.SkipWithError("no hop probes");
    return;
  }
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.model.QueryComposed(probe->subject, probe->r1, probe->r2, ++seed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelQueryComposed);

void BM_Pretrain(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  for (auto _ : state) {
    LanguageModel model(GptJSimConfig(), fx.dataset.vocab);
    model.Pretrain(fx.dataset.pretrain_facts);
    benchmark::DoNotOptimize(model.pretrained());
  }
  state.SetItemsProcessed(state.iterations() *
                          fx.dataset.pretrain_facts.size());
}
BENCHMARK(BM_Pretrain);

}  // namespace
}  // namespace oneedit

BENCHMARK_MAIN();
