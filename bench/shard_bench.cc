// Horizontal-scaling benchmark for the shard router (docs/sharding.md).
//
// For fleets of 1, 2 and 4 in-memory shards (no durability — the bench
// isolates routing + per-shard writer parallelism, not fsync), measures:
//
//   - read QPS: a fixed reader pool scatter-asks the fleet through
//     ShardRouter::Ask, which fans out across per-shard epoch snapshots;
//   - edit EPS: rounds of toggled counterfactual edits submitted through
//     the router, which lands each on its owning shard's writer.
//
// The acceptance gate — QPS(4)/QPS(1) >= 2.0 and EPS(4)/EPS(1) >= 2.0 —
// demands better-than-half-linear scaling, but only where the hardware can
// express it: on hosts with fewer than 8 hardware threads the fleet's
// writers share cores and the gate is report-only (the JSON still records
// the ratios and whether the gate was enforced).
//
// Results land in BENCH_shard.json (cwd).

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serving/edit_service.h"
#include "shard/shard_router.h"
#include "util/timer.h"

namespace oneedit {
namespace {

using serving::EditService;
using serving::EditServiceOptions;
using shard::ShardRouter;
using shard::ShardRouterOptions;
using shard::ShardSpec;

constexpr int kReaderThreads = 8;
constexpr double kReadSeconds = 1.5;
constexpr double kEditSeconds = 1.5;

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

struct ShardWorld {
  ShardWorld()
      : dataset(BuildAmericanPoliticians(DatasetOptions{})),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created = EditService::Create(&dataset.kg, model.get(),
                                       GraceConfig(), EditServiceOptions{});
    if (!created.ok()) {
      std::fprintf(stderr, "shard world create failed: %s\n",
                   created.status().ToString().c_str());
      std::abort();
    }
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

struct Fleet {
  explicit Fleet(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<ShardWorld>());
    }
    ShardRouterOptions options;
    options.vocab = &shards[0]->dataset.vocab;
    std::vector<ShardSpec> specs;
    for (size_t i = 0; i < n; ++i) {
      specs.push_back(ShardSpec{"shard-" + std::to_string(i),
                                shards[i]->service.get(), nullptr, 1.0});
    }
    router = std::make_unique<ShardRouter>(std::move(specs), options);
  }

  std::vector<std::unique_ptr<ShardWorld>> shards;
  std::unique_ptr<ShardRouter> router;
};

double MeasureReadQps(const Fleet& fleet) {
  const Dataset& dataset = fleet.shards[0]->dataset;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      uint64_t local = 0;
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const EditCase& c = dataset.cases[i % dataset.cases.size()];
        const auto decode =
            fleet.router->Ask(c.edit.subject, c.edit.relation);
        if (decode.ok()) ++local;
        ++i;
      }
      reads.fetch_add(local);
    });
  }
  WallTimer timer;
  while (timer.ElapsedSeconds() < kReadSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  const double seconds = timer.ElapsedSeconds();
  for (std::thread& reader : readers) reader.join();
  return static_cast<double>(reads.load()) / seconds;
}

double MeasureEditEps(const Fleet& fleet) {
  const Dataset& dataset = fleet.shards[0]->dataset;
  size_t applied = 0;
  WallTimer timer;
  size_t round = 0;
  while (timer.ElapsedSeconds() < kEditSeconds) {
    std::vector<std::future<StatusOr<EditResult>>> futures;
    futures.reserve(dataset.cases.size());
    for (const EditCase& edit_case : dataset.cases) {
      NamedTriple triple = edit_case.edit;
      if (round % 2 == 1) triple.object = edit_case.old_object;
      futures.push_back(
          fleet.router->Submit(EditRequest::Edit(triple, "bench")));
    }
    for (auto& future : futures) {
      const auto result = future.get();
      if (result.ok() && result->applied()) ++applied;
    }
    ++round;
  }
  const double seconds = timer.ElapsedSeconds();
  return seconds > 0.0 ? static_cast<double>(applied) / seconds : 0.0;
}

}  // namespace
}  // namespace oneedit

int main() {
  using namespace oneedit;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool enforce = cores >= 8;

  struct Row {
    size_t shards;
    double read_qps;
    double edit_eps;
  };
  std::vector<Row> rows;
  for (const size_t n : {1, 2, 4}) {
    Fleet fleet(n);
    const double qps = MeasureReadQps(fleet);
    const double eps = MeasureEditEps(fleet);
    rows.push_back({n, qps, eps});
    std::printf("shards=%zu  read_qps=%.1f  edit_eps=%.1f\n", n, qps, eps);
  }

  const double qps_ratio = rows[0].read_qps > 0.0
                               ? rows[2].read_qps / rows[0].read_qps
                               : 0.0;
  const double eps_ratio = rows[0].edit_eps > 0.0
                               ? rows[2].edit_eps / rows[0].edit_eps
                               : 0.0;
  std::printf("scaling 4v1: read %.2fx, edit %.2fx (cores=%u, gate %s)\n",
              qps_ratio, eps_ratio, cores,
              enforce ? "enforced" : "report-only");

  {
    std::ofstream out("BENCH_shard.json");
    out << "{\"fleets\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"shards\":" << rows[i].shards
          << ",\"read_qps\":" << rows[i].read_qps
          << ",\"edit_eps\":" << rows[i].edit_eps << "}";
    }
    out << "],\"qps_ratio_4v1\":" << qps_ratio
        << ",\"eps_ratio_4v1\":" << eps_ratio
        << ",\"reader_threads\":" << kReaderThreads
        << ",\"cores\":" << cores
        << ",\"linearity_gate_enforced\":" << (enforce ? "true" : "false")
        << "}\n";
  }

  bool ok = true;
  if (enforce) {
    if (qps_ratio < 2.0) {
      std::fprintf(stderr, "GATE FAIL: read QPS 4v1 %.2fx < 2.0x\n",
                   qps_ratio);
      ok = false;
    }
    if (eps_ratio < 2.0) {
      std::fprintf(stderr, "GATE FAIL: edit EPS 4v1 %.2fx < 2.0x\n",
                   eps_ratio);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
