// Microbenchmarks for the NLP substrate: tokenization, gazetteer matching,
// intent classification, triple extraction, and whole-utterance
// interpretation — the per-request interpreter costs behind OneEdit's
// pipeline latency.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/interpreter.h"
#include "data/dataset.h"
#include "nlp/tokenizer.h"
#include "nlp/utterance_generator.h"

namespace oneedit {
namespace {

struct NlpFixture {
  NlpFixture() : dataset(BuildAmericanPoliticians(DatasetOptions{})) {
    InterpreterConfig config;
    config.extraction_error_rate = 0.0;
    interpreter = std::make_unique<Interpreter>(
        std::move(Interpreter::Create(dataset.kg, config)).value());
    for (size_t c = 0; c < dataset.cases.size(); ++c) {
      utterances.push_back(EditUtterance(dataset.cases[c].edit, c));
    }
  }
  Dataset dataset;
  std::unique_ptr<Interpreter> interpreter;
  std::vector<std::string> utterances;
};

NlpFixture& SharedFixture() {
  static NlpFixture* const fixture = new NlpFixture();
  return *fixture;
}

void BM_Tokenize(benchmark::State& state) {
  NlpFixture& fx = SharedFixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Tokenize(fx.utterances[i++ % fx.utterances.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Tokenize);

void BM_IntentClassify(benchmark::State& state) {
  NlpFixture& fx = SharedFixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.interpreter->classifier().Predict(
        fx.utterances[i++ % fx.utterances.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntentClassify);

void BM_TripleExtract(benchmark::State& state) {
  NlpFixture& fx = SharedFixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.interpreter->extractor().Extract(
        fx.utterances[i++ % fx.utterances.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleExtract);

void BM_InterpretFull(benchmark::State& state) {
  NlpFixture& fx = SharedFixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.interpreter->Interpret(
        fx.utterances[i++ % fx.utterances.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpretFull);

void BM_InterpreterTrain(benchmark::State& state) {
  NlpFixture& fx = SharedFixture();
  for (auto _ : state) {
    InterpreterConfig config;
    benchmark::DoNotOptimize(Interpreter::Create(fx.dataset.kg, config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterTrain);

}  // namespace
}  // namespace oneedit

BENCHMARK_MAIN();
