// Substrate ablation (DESIGN.md §4.1): sweeps the simulated model's
// capacity (embedding dimension / layer count) and shows that sequential-
// editing damage is driven by superposition interference — small memories
// saturate quickly, larger ones absorb the same edit load gracefully,
// mirroring the capacity effects reported for real models (Hu et al. 2024).
//
// Protocol: lifelong MEMIT editing of 40 facts, then reliability / locality.

#include <iostream>

#include "data/dataset.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

int RunSubstrateAblation() {
  struct Variant {
    const char* label;
    size_t dim;
    size_t layers;
  };
  const Variant variants[] = {
      {"d=48,  L=3 (tiny)", 48, 3},
      {"d=64,  L=4 (GPT-2-XL-sized)", 64, 4},
      {"d=96,  L=6 (GPT-J-sized)", 96, 6},
      {"d=128, L=8 (larger)", 128, 8},
  };

  TablePrinter table({"Substrate", "Pretrain recall", "Reliability (40 seq.)",
                      "Locality (40 seq.)"});
  for (const Variant& variant : variants) {
    ModelConfig config = GptJSimConfig();
    config.name = variant.label;
    config.dim = variant.dim;
    config.num_layers = variant.layers;

    Harness harness([] { return BuildAmericanPoliticians(DatasetOptions{}); },
                    config);

    // Pretrain recall over a sample of the world.
    size_t correct = 0;
    size_t total = 0;
    for (const NamedTriple& fact : harness.reference().pretrain_facts) {
      if (total >= 200) break;
      correct += harness.model().Query(fact.subject, fact.relation).entity ==
                 fact.object;
      ++total;
    }

    RunOptions options;
    options.lifelong = true;
    options.max_cases = 40;
    const auto result = harness.Run(*ParseMethodSpec("MEMIT"), options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({variant.label,
                  FormatDouble(static_cast<double>(correct) / total, 3),
                  FormatDouble(result->scores.reliability, 3),
                  FormatDouble(result->scores.locality, 3)});
  }

  std::cout << "Substrate ablation: capacity vs sequential-editing damage "
               "(MEMIT, 40 lifelong edits)\n";
  table.Print(std::cout);
  std::cout << "\nReading: the same edit load that saturates a d=48 memory "
               "is absorbed by d=128\nwith little damage — superposition "
               "interference, the mechanism behind every\nsequential-editing "
               "result in this repository, scales inversely with capacity.\n";
  return 0;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunSubstrateAblation(); }
