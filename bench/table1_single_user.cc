// Reproduces Table 1: single-user knowledge editing on the American
// politicians and Academic figures datasets, for the GPT-J-6B and Qwen2-7B
// simulated models. OneEdit rows use n = 8 generation triples (the paper's
// setting, Table 1 caption).
//
// Usage: table1_single_user [--cases N] [--csv path]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

const char* const kMethods[] = {"FT",    "ROME",           "MEMIT",
                                "GRACE", "OneEdit (GRACE)", "OneEdit (MEMIT)"};

int RunTable1(size_t max_cases, const std::string& csv_path) {
  TablePrinter table({"Method", "Reliability", "Locality", "Reverse",
                      "One-Hop", "Sub-Replace", "Average"});
  std::vector<HarnessResult> all_results;

  const std::vector<ModelConfig> models = {GptJSimConfig(), Qwen2SimConfig()};
  struct DatasetSpec {
    const char* label;
    Dataset (*factory)(const DatasetOptions&);
  };
  const DatasetSpec datasets[] = {
      {"American politicians", &BuildAmericanPoliticians},
      {"Academic figures", &BuildAcademicFigures},
  };

  for (const ModelConfig& model : models) {
    for (const DatasetSpec& dataset : datasets) {
      table.AddSeparator();
      table.AddSection(model.name + " — " + dataset.label + " dataset");
      table.AddSeparator();
      Harness harness(
          [&dataset] {
            return dataset.factory(DatasetOptions{});
          },
          model);
      for (const char* method : kMethods) {
        const auto spec = ParseMethodSpec(method);
        if (!spec.ok()) {
          std::cerr << spec.status().ToString() << "\n";
          return 1;
        }
        RunOptions options;
        options.users = 1;
        options.controller.num_generation_triples = 8;
        options.max_cases = max_cases;
        const auto result = harness.Run(*spec, options);
        if (!result.ok()) {
          std::cerr << "run failed for " << method << ": "
                    << result.status().ToString() << "\n";
          return 1;
        }
        all_results.push_back(*result);
        const MetricScores& s = result->scores;
        table.AddRow({result->method, FormatDouble(s.reliability, 3),
                      FormatDouble(s.locality, 3), FormatDouble(s.reverse, 3),
                      FormatDouble(s.one_hop, 3),
                      FormatDouble(s.sub_replace, 3),
                      FormatDouble(s.Average(), 3)});
      }
    }
  }

  std::cout << "Table 1: single-user knowledge editing "
               "(OneEdit generation triples n = 8)\n";
  table.Print(std::cout);
  if (!csv_path.empty()) {
    const Status status = WriteResultsCsv(all_results, csv_path);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "(results written to " << csv_path << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace oneedit

int main(int argc, char** argv) {
  size_t max_cases = SIZE_MAX;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cases") == 0 && i + 1 < argc) {
      max_cases = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }
  return oneedit::RunTable1(max_cases, csv_path);
}
