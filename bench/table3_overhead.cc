// Reproduces Table 3: time and memory (VRAM) overhead per edit for OneEdit
// vs. plain MEMIT / GRACE under multi-user editing, on the GPT-2-XL /
// GPT-J-6B / Qwen2-7B simulated models.
//
// The scenario is §4.8.1's coverage case: the same knowledge is edited by
// k users and *returns to previous values* (Trump -> Biden -> Trump). The
// baseline pays k full edits; OneEdit pays one full edit and then serves
// rollbacks/re-edits from the edit cache (the space-for-time strategy,
// Eq. 8). Times come from the calibrated cost model (see
// src/core/cost_model.*); VRAM adds the interpreter deployment for OneEdit.
// A second table reports the measured wall-clock of this simulation, and a
// third ablates the edit cache.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/oneedit.h"
#include "data/dataset.h"
#include "data/name_pool.h"
#include "durability/manager.h"
#include "editing/editor.h"
#include "eval/harness.h"
#include "serving/self_healing.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace oneedit {
namespace {

struct ScenarioTiming {
  double full_edit_ms = 0.0;     ///< mean ms for a fresh (uncached) edit
  double cached_flip_ms = 0.0;   ///< mean ms for rollback + cached re-apply
};

/// Measures the coverage scenario A -> B -> A -> B...: the first two edits
/// are full edits; every subsequent flip is a rollback plus a cached
/// re-apply (the space-for-time fast path).
StatusOr<ScenarioTiming> MeasureScenario(EditingMethodKind method,
                                         const ModelConfig& model_config) {
  Dataset dataset = BuildAmericanPoliticians(DatasetOptions{});
  LanguageModel model(model_config, dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  const EditCase& edit_case = dataset.cases.front();
  const std::string objects[2] = {edit_case.edit.object,
                                  edit_case.old_object};

  OneEditConfig config;
  config.method = method;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  if (!system.ok()) return system.status();

  ScenarioTiming timing;
  // Prime both outcomes (full edits), timing the second (warm code paths).
  for (int i = 0; i < 2; ++i) {
    WallTimer timer;
    ONEEDIT_RETURN_IF_ERROR(
        (*system)
            ->EditTriple(NamedTriple{edit_case.edit.subject,
                                     edit_case.edit.relation, objects[i]},
                         "user")
            .status());
    if (i == 1) timing.full_edit_ms = timer.ElapsedMillis();
  }
  // Flip repeatedly through the cache.
  constexpr int kFlips = 50;
  WallTimer timer;
  for (int i = 0; i < kFlips; ++i) {
    ONEEDIT_RETURN_IF_ERROR(
        (*system)
            ->EditTriple(NamedTriple{edit_case.edit.subject,
                                     edit_case.edit.relation, objects[i % 2]},
                         "user")
            .status());
  }
  timing.cached_flip_ms = timer.ElapsedMillis() / kFlips;
  return timing;
}

enum class WalMode { kOff, kNoFsync, kFsync };

/// Mean wall-clock per edit with write-ahead logging off / on without
/// fsync / on with group-commit fsync — the durability tax on the write
/// path (checkpoints excluded; see docs/durability.md).
StatusOr<double> MeasureWalOverhead(WalMode mode) {
  Dataset dataset = BuildAmericanPoliticians(DatasetOptions{});
  LanguageModel model(Gpt2XlSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  if (!system.ok()) return system.status();

  const std::string dir = "/tmp/oneedit_bench_wal";
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::unique_ptr<durability::DurabilityManager> manager;
  if (mode != WalMode::kOff) {
    durability::DurabilityOptions opts;
    opts.dir = dir;
    opts.checkpoint_interval = 0;  // isolate the WAL cost
    opts.sync_on_commit = mode == WalMode::kFsync;
    ONEEDIT_ASSIGN_OR_RETURN(manager, durability::DurabilityManager::Open(opts));
  }

  const size_t edits = dataset.cases.size();
  WallTimer timer;
  for (size_t i = 0; i < edits; ++i) {
    const std::vector<EditRequest> batch = {
        EditRequest::Edit(dataset.cases[i].edit, "bench")};
    if (manager != nullptr) {
      ONEEDIT_RETURN_IF_ERROR(manager->LogBatch(
          batch, config.method, &(*system)->statistics()));
    }
    for (const auto& result : (*system)->EditBatch(batch)) {
      ONEEDIT_RETURN_IF_ERROR(result.status());
    }
  }
  return timer.ElapsedMillis() / static_cast<double>(edits);
}

// --------------------------------------------------- self-healing overhead ----

struct SelfHealWorld {
  SelfHealWorld() {
    DatasetOptions options;
    options.num_cases = 16;  // first 8 cases have disjoint footprints
    dataset = BuildAmericanPoliticians(options);
    model = std::make_unique<LanguageModel>(Gpt2XlSimConfig(), dataset.vocab);
    model->Pretrain(dataset.pretrain_facts);
    OneEditConfig config;
    config.method = EditingMethodKind::kMemit;
    auto created = OneEditSystem::Create(&dataset.kg, model.get(), config);
    system = created.ok() ? std::move(created).value() : nullptr;
  }

  std::vector<EditRequest> Innocents(size_t count) const {
    std::vector<EditRequest> requests;
    for (size_t i = 0; i < count; ++i) {
      requests.push_back(EditRequest::Edit(dataset.cases[i].edit, "bench"));
    }
    return requests;
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<OneEditSystem> system;
};

struct SelfHealTiming {
  double clean_plain_ms = 0.0;      ///< 8-edit batch, validation off
  double clean_validated_ms = 0.0;  ///< 8-edit batch, canary + reliability on
  double poisoned_heal_ms = 0.0;    ///< rollback + bisection + quarantine
  double rollback_mean_us = 0.0;    ///< mean per-rollback undo time
  size_t rollbacks = 0;
};

/// Wall-clock of the write-path validation (docs/self_healing.md): the tax a
/// clean batch pays for canary probes, and the cost of healing a poisoned
/// batch (transactional rollback, bisection probes, quarantine, re-apply).
StatusOr<SelfHealTiming> MeasureSelfHealing() {
  SelfHealTiming timing;
  {
    SelfHealWorld world;
    if (world.system == nullptr) return Status::Internal("world build failed");
    serving::SelfHealOptions options;
    options.validate_after_apply = false;
    serving::SelfHealer healer(world.system.get(), options);
    WallTimer timer;
    healer.ApplyValidated(world.Innocents(8), /*validation_seed=*/1);
    timing.clean_plain_ms = timer.ElapsedMillis();
  }
  {
    SelfHealWorld world;
    serving::SelfHealer healer(world.system.get(), serving::SelfHealOptions{});
    WallTimer timer;
    healer.ApplyValidated(world.Innocents(8), /*validation_seed=*/1);
    timing.clean_validated_ms = timer.ElapsedMillis();
  }
  {
    SelfHealWorld world;
    // Poison: hand-inflate a slot's live-edit ledger (see
    // tests/self_healing_test.cc); the next edit on it sprays ledger-scaled
    // collateral and fails validation.
    EditingMethod& method = world.system->editor().method();
    const NamedTriple poison{names::State(20), "governor",
                             names::Person(42)};
    for (int i = 0; i < 3; ++i) {
      ONEEDIT_ASSIGN_OR_RETURN(const EditDelta delta,
                               method.ApplyEdit(world.model.get(), poison));
      ApplyWeightDelta(world.model.get(), delta, -1.0);
    }
    std::vector<EditRequest> requests = world.Innocents(7);
    requests.insert(requests.begin() + 3,
                    EditRequest::Edit(poison, "mallory"));
    serving::SelfHealer healer(world.system.get(), serving::SelfHealOptions{});
    WallTimer timer;
    const serving::HealedBatch healed =
        healer.ApplyValidated(requests, /*validation_seed=*/1);
    timing.poisoned_heal_ms = timer.ElapsedMillis();
    timing.rollbacks = healed.rollbacks;
    const HistogramSnapshot rollback =
        world.system->statistics().GetHistogram(Histogram::kRollbackMicros);
    timing.rollback_mean_us = rollback.Average();
    if (healed.quarantined.size() != 1) {
      return Status::Internal("bench poison was not quarantined");
    }
  }
  return timing;
}

int RunTable3() {
  const std::vector<ModelConfig> models = {
      Gpt2XlSimConfig(), GptJSimConfig(), Qwen2SimConfig()};

  TablePrinter table({"Model", "OneEdit (MEMIT)", "MEMIT, Users = 2",
                      "MEMIT, Users = 3", "OneEdit (GRACE)",
                      "GRACE, Users = 2", "GRACE, Users = 3"});

  for (const ModelConfig& model : models) {
    const double memit_edit =
        CostModel::EditSeconds("MEMIT", model.params_million, false);
    const double grace_edit =
        CostModel::EditSeconds("GRACE", model.params_million, false);
    const double oneedit_memit = memit_edit + 1.2;
    const double oneedit_grace = grace_edit + 1.2;

    table.AddSection(model.name);
    table.AddRow({"Time Overhead (s)", FormatDouble(oneedit_memit, 0),
                  FormatDouble(2 * memit_edit, 0),
                  FormatDouble(3 * memit_edit, 0),
                  FormatDouble(oneedit_grace, 0),
                  FormatDouble(2 * grace_edit, 0),
                  FormatDouble(3 * grace_edit, 0)});
    table.AddRow(
        {"VRAM Overhead (GB)",
         FormatDouble(CostModel::VramGb("MEMIT", model.params_million, true), 0),
         FormatDouble(CostModel::VramGb("MEMIT", model.params_million, false), 0),
         FormatDouble(CostModel::VramGb("MEMIT", model.params_million, false), 0),
         FormatDouble(CostModel::VramGb("GRACE", model.params_million, true), 0),
         FormatDouble(CostModel::VramGb("GRACE", model.params_million, false), 0),
         FormatDouble(CostModel::VramGb("GRACE", model.params_million, false), 0)});
    table.AddSeparator();
  }

  std::cout << "Table 3: time and VRAM overhead (cost model; coefficients "
               "fitted to the paper's A800/3090 measurements)\n";
  table.Print(std::cout);

  // Savings summary (the paper's 40% / 70% claim).
  std::cout << "\nRollback-reuse time savings (MEMIT, cost model):\n";
  for (const ModelConfig& model : models) {
    const double edit =
        CostModel::EditSeconds("MEMIT", model.params_million, false);
    const double oneedit = edit + 1.2;
    std::cout << "  " << model.name << ": users=2 saves "
              << FormatDouble(100.0 * (1.0 - oneedit / (2 * edit)), 0)
              << "%, users=3 saves "
              << FormatDouble(100.0 * (1.0 - oneedit / (3 * edit)), 0)
              << "% vs sequential re-editing\n";
  }

  // Measured wall-clock of this C++ simulation (not the paper's GPUs):
  // the same cache-reuse effect, end to end.
  std::cout << "\nMeasured simulation wall-clock, coverage scenario "
               "(A->B->A->B..., GPT-J-6B(sim)):\n";
  TablePrinter measured(
      {"Method", "full edit (ms)", "cached flip: rollback+reapply (ms)"});
  for (const EditingMethodKind method :
       {EditingMethodKind::kMemit, EditingMethodKind::kGrace}) {
    const auto timing = MeasureScenario(method, GptJSimConfig());
    if (!timing.ok()) {
      std::cerr << "scenario failed: " << timing.status().ToString() << "\n";
      return 1;
    }
    measured.AddRow({"OneEdit (" + MethodKindName(method) + ")",
                     FormatDouble(timing->full_edit_ms, 3),
                     FormatDouble(timing->cached_flip_ms, 3)});
  }
  measured.Print(std::cout);

  // Durability tax: edit latency with the crash-safety write path off, on
  // without fsync, and on with per-batch group-commit fsync.
  std::cout << "\nMeasured edit latency vs. durability mode "
               "(GPT-2-XL(sim), GRACE):\n";
  TablePrinter durability_table({"Mode", "mean ms / edit"});
  const struct {
    WalMode mode;
    const char* label;
  } modes[] = {{WalMode::kOff, "WAL off (in-memory only)"},
               {WalMode::kNoFsync, "WAL on, no fsync"},
               {WalMode::kFsync, "WAL on + group-commit fsync"}};
  for (const auto& m : modes) {
    const auto mean_ms = MeasureWalOverhead(m.mode);
    if (!mean_ms.ok()) {
      std::cerr << "durability bench failed: " << mean_ms.status().ToString()
                << "\n";
      return 1;
    }
    durability_table.AddRow({m.label, FormatDouble(*mean_ms, 3)});
  }
  durability_table.Print(std::cout);

  // Self-healing tax: what post-apply validation costs a clean batch, and
  // what a poisoned batch costs to roll back, bisect and quarantine.
  std::cout << "\nMeasured self-healing overhead "
               "(GPT-2-XL(sim), MEMIT, 8-edit batch):\n";
  const auto heal = MeasureSelfHealing();
  if (!heal.ok()) {
    std::cerr << "self-healing bench failed: " << heal.status().ToString()
              << "\n";
    return 1;
  }
  TablePrinter heal_table({"Scenario", "ms / batch"});
  heal_table.AddRow({"clean batch, validation off",
                     FormatDouble(heal->clean_plain_ms, 3)});
  heal_table.AddRow({"clean batch, canary + reliability validation",
                     FormatDouble(heal->clean_validated_ms, 3)});
  heal_table.AddRow({"poisoned batch: rollback + bisect + quarantine",
                     FormatDouble(heal->poisoned_heal_ms, 3)});
  heal_table.Print(std::cout);
  std::cout << "  rollbacks per healed batch: " << heal->rollbacks
            << ", mean rollback " << FormatDouble(heal->rollback_mean_us, 1)
            << " us\n";
  return 0;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunTable3(); }
