// Reproduces Figure 6: the reverse-conflict case study (§4.8.2).
//
// Step 1: a user edits "Donald Trump's wife is Ivana Trump". OneEdit
// auto-constructs the inverse triple (Ivana Trump, husband, Donald Trump)
// and edits both directions in (Algorithm 2).
// Step 2: after the divorce, a user edits "Ivana Trump's husband is Ricardo
// Mazzuchelli". The auto-constructed reverse knowledge now CONFLICTS in the
// KG; the Controller rolls back the outdated edits — including the forward
// counterpart (Donald Trump, wife, Ivana Trump) — and installs the new pair.

#include <iostream>

#include "core/oneedit.h"
#include "model/model_config.h"
#include "util/rng.h"

namespace oneedit {
namespace {

Vocab CaseVocab() {
  Vocab vocab;
  vocab.entities = {"Donald Trump", "Ivana Trump", "Ricardo Mazzuchelli",
                    "Marla Maples", "the USA"};
  vocab.relations = {{"wife", "husband"}};
  return vocab;
}

void ShowBeliefs(LanguageModel& model) {
  const auto ask = [&model](const char* subject, const char* relation) {
    QueryOptions options;
    options.probe_seed = Rng::HashString(std::string(subject) + relation);
    const Decode decode = model.Query(subject, relation, options);
    std::cout << "    " << relation << "(" << subject << ") = "
              << decode.entity << "\n";
  };
  ask("Donald Trump", "wife");
  ask("Ivana Trump", "husband");
  ask("Ricardo Mazzuchelli", "wife");
}

int RunFig6() {
  KnowledgeGraph kg;
  const RelationId wife = kg.schema().Define("wife");
  const RelationId husband = kg.schema().Define("husband");
  (void)kg.schema().SetInverse(wife, husband);
  kg.InternEntity("Donald Trump");
  kg.InternEntity("Ivana Trump");
  kg.InternEntity("Ricardo Mazzuchelli");

  ModelConfig config = Gpt2XlSimConfig();
  config.junk_fraction = 0.2;
  LanguageModel model(config, CaseVocab());
  model.Pretrain({});  // the marriages arrive purely as edits

  OneEditConfig oneedit_config;
  oneedit_config.method = EditingMethodKind::kMemit;
  oneedit_config.controller.num_generation_triples = 4;
  auto system = OneEditSystem::Create(&kg, &model, oneedit_config);
  if (!system.ok()) {
    std::cerr << system.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Figure 6: reverse-conflict case study\n";

  std::cout << "\n[step 1] edit: (Donald Trump, wife, Ivana Trump)\n";
  auto report = (*system)->EditTriple(
      NamedTriple{"Donald Trump", "wife", "Ivana Trump"}, "user");
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "    triples edited into the model:\n";
  for (const NamedTriple& t : report->plan().edits) {
    std::cout << "      (" << t.subject << ", " << t.relation << ", "
              << t.object << ")\n";
  }
  ShowBeliefs(model);

  std::cout << "\n[step 2] edit: (Ivana Trump, husband, Ricardo "
               "Mazzuchelli)\n";
  report = (*system)->EditTriple(
      NamedTriple{"Ivana Trump", "husband", "Ricardo Mazzuchelli"}, "user");
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "    conflicts detected -> rollbacks:\n";
  for (const NamedTriple& t : report->plan().rollbacks) {
    std::cout << "      (" << t.subject << ", " << t.relation << ", "
              << t.object << ")\n";
  }
  std::cout << "    (applied " << report->outcome().rollbacks_applied
            << " cached rollbacks)\n";
  std::cout << "    new triples edited into the model:\n";
  for (const NamedTriple& t : report->plan().edits) {
    std::cout << "      (" << t.subject << ", " << t.relation << ", "
              << t.object << ")\n";
  }
  ShowBeliefs(model);

  std::cout << "\nWithout the auto-constructed inverse relationship, a "
               "conventional editor would leave\n\"Donald Trump's wife is "
               "Ivana Trump\" in place alongside \"Ivana Trump's husband is\n"
               "Ricardo Mazzuchelli\" — the absurd state the paper "
               "describes.\n";
  return 0;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunFig6(); }
