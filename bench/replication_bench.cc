// Replication benchmark: read-throughput scaling across follower counts and
// steady-state replication lag.
//
// Part 1 — read scaling: a primary applies a burst of edits; follower
// fleets of 1, 2 and 4 replicas (each an in-process EditService tailing the
// primary's WAL over loopback) catch up, then reader threads hammer Ask
// spread across the fleet for a fixed wall budget. Aggregate QPS should
// grow with the follower count — the reason read replicas exist — though on
// a small host the threads time-slice the same cores and the curve
// flattens (reported, not enforced, mirroring serving_bench).
//
// Part 2 — steady-state lag: a paced writer streams edits through the
// primary while a sampler records each follower's replication lag (records
// and seconds). After the writer stops, the time for every follower to
// reach lag 0 is the convergence tail.
//
// Results land in BENCH_replication.json (cwd) for machine consumption.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "durability/manager.h"
#include "serving/edit_service.h"
#include "util/timer.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReplicationRole;

constexpr int kReaderThreads = 4;
constexpr double kReadSeconds = 1.0;

struct World {
  World()
      : dataset(BuildAmericanPoliticians(DatasetOptions{})),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
  }

  OneEditConfig Config() const {
    OneEditConfig config;
    config.method = EditingMethodKind::kGrace;
    config.interpreter.extraction_error_rate = 0.0;
    return config;
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
};

std::string FreshDir(const std::string& name) {
  const std::string dir = "/tmp/oneedit_repl_bench_" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

/// One in-process replication-group member (primary or follower).
struct Node {
  Node(const std::string& name, ReplicationRole role, uint16_t primary_port) {
    DurabilityOptions dopts;
    dopts.dir = FreshDir(name);
    dopts.checkpoint_interval = 16;
    auto mgr = DurabilityManager::Open(dopts);
    if (!mgr.ok()) {
      std::cerr << "durability: " << mgr.status().ToString() << "\n";
      return;
    }
    durability = std::move(mgr).value();
    EditServiceOptions options;
    options.durability = durability.get();
    options.replication.role = role;
    options.replication.primary_port = primary_port;
    options.replication.poll_interval = std::chrono::milliseconds(2);
    auto created = EditService::Create(&world.dataset.kg, world.model.get(),
                                       world.Config(), options);
    if (!created.ok()) {
      std::cerr << "service: " << created.status().ToString() << "\n";
      return;
    }
    service = std::move(created).value();
  }

  World world;
  std::unique_ptr<DurabilityManager> durability;
  std::unique_ptr<EditService> service;
};

bool WaitForSequence(const std::vector<std::unique_ptr<Node>>& followers,
                     uint64_t sequence, double timeout_seconds = 30.0) {
  WallTimer timer;
  while (timer.ElapsedSeconds() < timeout_seconds) {
    bool behind = false;
    for (const auto& follower : followers) {
      if (follower->service->applied_sequence() < sequence) behind = true;
    }
    if (!behind) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

/// Aggregate Ask QPS with kReaderThreads spread round-robin over `fleet`.
double MeasureFleetQps(const Dataset& dataset,
                       const std::vector<EditService*>& fleet) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      EditService* replica = fleet[static_cast<size_t>(t) % fleet.size()];
      size_t i = static_cast<size_t>(t);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const EditCase& edit_case = dataset.cases[i++ % dataset.cases.size()];
        (void)replica->GetSnapshot()->Ask(edit_case.edit.subject,
                                          edit_case.edit.relation);
        ++local;
      }
      reads.fetch_add(local);
    });
  }
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(kReadSeconds));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  return static_cast<double>(reads.load()) / timer.ElapsedSeconds();
}

int RunReplicationBench() {
  std::cout << "Replication bench: follower read scaling + steady-state "
               "lag\n(" << kReaderThreads
            << " reader threads, GRACE, American-politicians world)\n\n";

  // One primary, four followers — the largest fleet; smaller fleets are
  // prefixes of it, so each scaling point reuses the same caught-up nodes.
  auto primary = std::make_unique<Node>("primary", ReplicationRole::kPrimary,
                                        0);
  if (primary->service == nullptr ||
      primary->service->replication_server() == nullptr) {
    std::cerr << "primary did not start\n";
    return 1;
  }
  const uint16_t port = primary->service->replication_server()->port();
  std::vector<std::unique_ptr<Node>> followers;
  for (int i = 0; i < 4; ++i) {
    followers.push_back(std::make_unique<Node>(
        "f" + std::to_string(i), ReplicationRole::kFollower, port));
    if (followers.back()->service == nullptr) return 1;
  }

  // Burst phase: land half the dataset on the primary, fleet catches up.
  const size_t kBurst = primary->world.dataset.cases.size() / 2;
  for (size_t i = 0; i < kBurst; ++i) {
    const auto result = primary->service->SubmitAndWait(
        EditRequest::Edit(primary->world.dataset.cases[i].edit, "bench"));
    if (!result.ok() || !result->applied()) {
      std::cerr << "burst edit " << i << " failed\n";
      return 1;
    }
  }
  const uint64_t burst_head = primary->service->applied_sequence();
  WallTimer catchup_timer;
  if (!WaitForSequence(followers, burst_head)) {
    std::cerr << "fleet never caught up to " << burst_head << "\n";
    return 1;
  }
  const double catchup_seconds = catchup_timer.ElapsedSeconds();
  std::cout << "fleet caught up to sequence " << burst_head << " in "
            << catchup_seconds << " s\n\n";

  // ---- Part 1: read QPS by follower count ----
  std::vector<std::pair<int, double>> scaling;
  for (int count : {1, 2, 4}) {
    std::vector<EditService*> fleet;
    for (int i = 0; i < count; ++i) fleet.push_back(followers[static_cast<size_t>(i)]->service.get());
    const double qps = MeasureFleetQps(primary->world.dataset, fleet);
    scaling.emplace_back(count, qps);
    std::cout << "Read QPS, " << count << " follower(s): "
              << static_cast<uint64_t>(qps) << "\n";
  }

  // ---- Part 2: steady-state lag under a paced writer ----
  std::atomic<bool> writing{true};
  std::thread writer([&] {
    size_t i = 0;
    while (writing.load()) {
      const EditCase& edit_case =
          primary->world.dataset
              .cases[kBurst + (i++ % (primary->world.dataset.cases.size() -
                                      kBurst))];
      NamedTriple triple = edit_case.edit;
      if ((i / (primary->world.dataset.cases.size() - kBurst)) % 2 == 1) {
        triple.object = edit_case.old_object;
      }
      (void)primary->service->SubmitAndWait(
          EditRequest::Edit(triple, "bench"));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  double lag_records_sum = 0.0, lag_records_max = 0.0;
  double lag_seconds_sum = 0.0, lag_seconds_max = 0.0;
  size_t samples = 0;
  {
    WallTimer window;
    while (window.ElapsedSeconds() < 2.0) {
      for (const auto& follower : followers) {
        const double records = static_cast<double>(
            follower->service->replication_lag_records());
        const double seconds = follower->service->replication_lag_seconds();
        lag_records_sum += records;
        lag_seconds_sum += seconds;
        if (records > lag_records_max) lag_records_max = records;
        if (seconds > lag_seconds_max) lag_seconds_max = seconds;
        ++samples;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  writing.store(false);
  writer.join();

  // Convergence tail: once the writer stops, every follower must drain to
  // lag 0 — the bench's only hard acceptance gate.
  WallTimer converge_timer;
  const uint64_t final_head = primary->service->applied_sequence();
  bool converged = WaitForSequence(followers, final_head, 20.0);
  if (converged) {
    converged = [&] {
      WallTimer timer;
      while (timer.ElapsedSeconds() < 10.0) {
        bool all_zero = true;
        for (const auto& follower : followers) {
          if (follower->service->replication_lag_batches() != 0) {
            all_zero = false;
          }
        }
        if (all_zero) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return false;
    }();
  }
  const double converge_seconds = converge_timer.ElapsedSeconds();

  const double lag_records_mean =
      samples > 0 ? lag_records_sum / static_cast<double>(samples) : 0.0;
  const double lag_seconds_mean =
      samples > 0 ? lag_seconds_sum / static_cast<double>(samples) : 0.0;
  std::cout << "\nSteady-state lag (" << samples << " samples):\n";
  std::cout << "  records: mean " << lag_records_mean << ", max "
            << lag_records_max << "\n";
  std::cout << "  seconds: mean " << lag_seconds_mean << ", max "
            << lag_seconds_max << "\n";
  std::cout << "Convergence after writer stop: "
            << (converged ? "all followers at lag 0" : "TIMED OUT") << " in "
            << converge_seconds << " s\n";

  // Correctness spot-check: a caught-up replica answers like the primary.
  bool answers_ok = true;
  for (size_t i = 0; i < kBurst; ++i) {
    const auto& edit = primary->world.dataset.cases[i].edit;
    const std::string want =
        primary->service->GetSnapshot()->Ask(edit.subject, edit.relation)
            ->entity;
    for (const auto& follower : followers) {
      if (follower->service->GetSnapshot()
              ->Ask(edit.subject, edit.relation)
              ->entity !=
          want) {
        answers_ok = false;
      }
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "\nacceptance: fleet converges to lag 0: "
            << (converged ? "PASS" : "FAIL")
            << ", replica answers match primary: "
            << (answers_ok ? "PASS" : "FAIL")
            << ", read scaling: REPORTED (host has " << cores
            << " core(s))\n";

  std::ofstream json("BENCH_replication.json");
  json << "{\"followers_qps\":{";
  for (size_t i = 0; i < scaling.size(); ++i) {
    json << (i > 0 ? "," : "") << "\"" << scaling[i].first
         << "\":" << scaling[i].second;
  }
  json << "},\"catchup_seconds\":" << catchup_seconds
       << ",\"burst_edits\":" << burst_head
       << ",\"lag_records_mean\":" << lag_records_mean
       << ",\"lag_records_max\":" << lag_records_max
       << ",\"lag_seconds_mean\":" << lag_seconds_mean
       << ",\"lag_seconds_max\":" << lag_seconds_max
       << ",\"converge_seconds\":" << converge_seconds
       << ",\"converged\":" << (converged ? "true" : "false")
       << ",\"answers_match\":" << (answers_ok ? "true" : "false")
       << ",\"cores\":" << cores << "}\n";
  json.close();
  std::cout << "wrote BENCH_replication.json\n";

  return converged && answers_ok ? 0 : 1;
}

}  // namespace
}  // namespace oneedit

int main() { return oneedit::RunReplicationBench(); }
